"""Unit tests for the RESCAL baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.rescal import RESCAL
from repro.core.models import make_distmult
from repro.nn.autodiff import numeric_gradient
from repro.nn.losses import LogisticLoss
from repro.nn.optimizers import SGD, Adam, aggregate_rows

NE, NR, DIM = 10, 3, 4


@pytest.fixture
def model(rng):
    return RESCAL(NE, NR, DIM, rng, unit_norm_entities=False)


class TestScoring:
    def test_bilinear_formula(self, model):
        h, t, r = 0, 1, 2
        expected = model.entity_embeddings[h] @ model.relation_matrices[r] @ model.entity_embeddings[t]
        score = model.score_triples(np.array([h]), np.array([t]), np.array([r]))
        assert score[0] == pytest.approx(expected)

    def test_score_all_tails_consistent(self, model, rng):
        heads = rng.integers(0, NE, 3)
        rels = rng.integers(0, NR, 3)
        matrix = model.score_all_tails(heads, rels)
        for e in range(NE):
            assert np.allclose(
                matrix[:, e], model.score_triples(heads, np.full(3, e), rels)
            )

    def test_score_all_heads_consistent(self, model, rng):
        tails = rng.integers(0, NE, 3)
        rels = rng.integers(0, NR, 3)
        matrix = model.score_all_heads(tails, rels)
        for e in range(NE):
            assert np.allclose(
                matrix[:, e], model.score_triples(np.full(3, e), tails, rels)
            )

    def test_generalizes_distmult(self, rng):
        """RESCAL with diagonal relation matrices is exactly DistMult."""
        distmult = make_distmult(NE, NR, DIM, rng, initializer="normal")
        rescal = RESCAL(NE, NR, DIM, np.random.default_rng(0), unit_norm_entities=False)
        rescal.entity_embeddings = distmult.entity_embeddings[:, 0, :].copy()
        for r in range(NR):
            rescal.relation_matrices[r] = np.diag(distmult.relation_embeddings[r, 0])
        heads, tails = np.arange(5), np.arange(5, 10)
        rels = np.array([0, 1, 2, 0, 1])
        assert np.allclose(
            rescal.score_triples(heads, tails, rels),
            distmult.score_triples(heads, tails, rels),
        )


class TestTraining:
    def test_gradients_match_finite_differences(self, model):
        positives = np.array([[0, 1, 0], [2, 3, 1]])
        negatives = np.array([[0, 4, 0], [5, 3, 1]])
        triples = np.concatenate([positives, negatives])
        labels = np.array([1.0, 1.0, -1.0, -1.0])
        loss = LogisticLoss()

        # entity gradient via a probe wrapper
        original = model.entity_embeddings.copy()

        def loss_at(table):
            model.entity_embeddings = table
            scores = model.score_triples(triples[:, 0], triples[:, 1], triples[:, 2])
            return loss.value(scores, labels)

        numeric = numeric_gradient(loss_at, original.copy())
        model.entity_embeddings = original

        h = model.entity_embeddings[triples[:, 0]]
        t = model.entity_embeddings[triples[:, 1]]
        w = model.relation_matrices[triples[:, 2]]
        scores = np.einsum("bi,bij,bj->b", h, w, t)
        g = loss.grad_score(scores, labels)
        grad_h = g[:, None] * np.einsum("bij,bj->bi", w, t)
        grad_t = g[:, None] * np.einsum("bi,bij->bj", h, w)
        dense = np.zeros_like(model.entity_embeddings)
        rows, grads = aggregate_rows(
            np.concatenate([triples[:, 0], triples[:, 1]]),
            np.concatenate([grad_h, grad_t], axis=0),
        )
        dense[rows] = grads
        assert np.allclose(dense, numeric, atol=1e-6)

    def test_loss_decreases(self, model):
        positives = np.array([[0, 1, 0], [2, 3, 1]])
        negatives = np.array([[0, 4, 0], [5, 3, 1]])
        opt = Adam(learning_rate=0.05)
        first = model.train_step(positives, negatives, opt)
        for _ in range(30):
            last = model.train_step(positives, negatives, opt)
        assert last < first

    def test_unit_norm_option(self, rng):
        model = RESCAL(NE, NR, DIM, rng, unit_norm_entities=True)
        model.train_step(
            np.array([[0, 1, 0]]), np.array([[0, 2, 0]]), SGD(learning_rate=0.1)
        )
        assert np.allclose(np.linalg.norm(model.entity_embeddings[[0, 1, 2]], axis=-1), 1.0)

    def test_regularization_loss_added(self, rng):
        plain = RESCAL(NE, NR, DIM, rng, unit_norm_entities=False)
        reg = RESCAL(NE, NR, DIM, np.random.default_rng(0), regularization=1.0,
                     unit_norm_entities=False)
        reg.entity_embeddings = plain.entity_embeddings.copy()
        reg.relation_matrices = plain.relation_matrices.copy()
        p = np.array([[0, 1, 0]])
        n = np.array([[0, 2, 0]])
        assert reg.train_step(p, n, SGD(1e-12)) > plain.train_step(p, n, SGD(1e-12))

    def test_parameter_count_quadratic_in_dim(self, model):
        assert model.parameter_count() == NE * DIM + NR * DIM * DIM
