"""Unit tests for the ER-MLP baseline (trained through autodiff)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.er_mlp import ERMLP
from repro.errors import ConfigError
from repro.nn.optimizers import Adam

NE, NR, DIM = 8, 2, 4


@pytest.fixture
def model(rng):
    return ERMLP(NE, NR, DIM, rng, hidden=6)


class TestScoring:
    def test_score_shape(self, model, rng):
        heads = rng.integers(0, NE, 5)
        tails = rng.integers(0, NE, 5)
        rels = rng.integers(0, NR, 5)
        assert model.score_triples(heads, tails, rels).shape == (5,)

    def test_score_all_tails_consistent(self, model):
        heads = np.array([0, 1])
        rels = np.array([0, 1])
        matrix = model.score_all_tails(heads, rels)
        assert matrix.shape == (2, NE)
        for e in range(NE):
            assert np.allclose(
                matrix[:, e], model.score_triples(heads, np.full(2, e), rels)
            )

    def test_score_all_heads_consistent(self, model):
        tails = np.array([3, 4])
        rels = np.array([1, 0])
        matrix = model.score_all_heads(tails, rels)
        for e in range(NE):
            assert np.allclose(
                matrix[:, e], model.score_triples(np.full(2, e), tails, rels)
            )

    def test_asymmetric_score(self, model, rng):
        """Unlike DistMult, the MLP is generically asymmetric in h/t."""
        heads = rng.integers(0, NE, 6)
        tails = (heads + 1) % NE
        rels = rng.integers(0, NR, 6)
        assert not np.allclose(
            model.score_triples(heads, tails, rels),
            model.score_triples(tails, heads, rels),
        )

    def test_default_hidden_size(self, rng):
        assert ERMLP(NE, NR, DIM, rng).hidden == 2 * DIM

    def test_bad_dim_raises(self, rng):
        with pytest.raises(ConfigError):
            ERMLP(NE, NR, 0, rng)


class TestTraining:
    def test_loss_decreases_on_fixed_batch(self, model):
        positives = np.array([[0, 1, 0], [2, 3, 1]])
        negatives = np.array([[0, 5, 0], [6, 3, 1]])
        opt = Adam(learning_rate=0.05)
        first = model.train_step(positives, negatives, opt)
        for _ in range(60):
            last = model.train_step(positives, negatives, opt)
        assert last < first * 0.8

    def test_all_parameter_groups_updated(self, model):
        snapshots = {
            "entities": model.entity_embeddings.copy(),
            "relations": model.relation_embeddings.copy(),
            "w1": model.w1.copy(),
            "b1": model.b1.copy(),
            "w2": model.w2.copy(),
            "b2": model.b2.copy(),
        }
        model.train_step(
            np.array([[0, 1, 0]]), np.array([[0, 2, 0]]), Adam(learning_rate=0.1)
        )
        assert not np.allclose(model.entity_embeddings[[0, 1, 2]],
                               snapshots["entities"][[0, 1, 2]])
        assert not np.allclose(model.w1, snapshots["w1"])
        assert not np.allclose(model.b1, snapshots["b1"])
        assert not np.allclose(model.w2, snapshots["w2"])
        assert not np.allclose(model.b2, snapshots["b2"])

    def test_can_separate_a_learnable_pattern(self, rng):
        """The MLP must fit a tiny rule: relation 0 links even->odd ids."""
        model = ERMLP(NE, NR, DIM, rng, hidden=16)
        positives = np.array([[0, 1, 0], [2, 3, 0], [4, 5, 0], [6, 7, 0]])
        negatives = np.array([[1, 0, 0], [3, 2, 0], [5, 4, 0], [7, 6, 0]])
        opt = Adam(learning_rate=0.03)
        for _ in range(300):
            model.train_step(positives, negatives, opt)
        pos_scores = model.score_triples(positives[:, 0], positives[:, 1], positives[:, 2])
        neg_scores = model.score_triples(negatives[:, 0], negatives[:, 1], negatives[:, 2])
        assert pos_scores.min() > neg_scores.max()

    def test_parameter_count(self, model):
        expected = NE * DIM + NR * DIM + 3 * DIM * 6 + 6 + 6 + 1
        assert model.parameter_count() == expected
