"""Unit tests for the TransE baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.transe import TransE
from repro.errors import ConfigError
from repro.nn.optimizers import SGD, Adam

NE, NR, DIM = 12, 3, 6


@pytest.fixture
def model(rng):
    return TransE(NE, NR, DIM, rng, norm=1)


class TestScoring:
    def test_perfect_translation_scores_zero(self, rng):
        model = TransE(NE, NR, DIM, rng, norm=2)
        model.entity_embeddings[1] = model.entity_embeddings[0] + model.relation_embeddings[0]
        score = model.score_triples(np.array([0]), np.array([1]), np.array([0]))
        assert score[0] == pytest.approx(0.0)

    def test_scores_non_positive(self, model, rng):
        heads = rng.integers(0, NE, 10)
        tails = rng.integers(0, NE, 10)
        rels = rng.integers(0, NR, 10)
        assert np.all(model.score_triples(heads, tails, rels) <= 0.0)

    @pytest.mark.parametrize("norm", [1, 2])
    def test_score_all_consistent_with_triples(self, rng, norm):
        model = TransE(NE, NR, DIM, rng, norm=norm)
        heads = np.array([0, 3])
        rels = np.array([1, 2])
        matrix = model.score_all_tails(heads, rels)
        for e in range(NE):
            expected = model.score_triples(heads, np.full(2, e), rels)
            assert np.allclose(matrix[:, e], expected)
        tails = np.array([2, 5])
        matrix = model.score_all_heads(tails, rels)
        for e in range(NE):
            expected = model.score_triples(np.full(2, e), tails, rels)
            assert np.allclose(matrix[:, e], expected)

    def test_bad_norm_raises(self, rng):
        with pytest.raises(ConfigError):
            TransE(NE, NR, DIM, rng, norm=3)


class TestTraining:
    def test_margin_loss_decreases(self, model):
        positives = np.array([[0, 1, 0], [2, 3, 1], [4, 5, 2]])
        negatives = np.array([[0, 7, 0], [9, 3, 1], [4, 8, 2]])
        opt = SGD(learning_rate=0.05)
        first = model.train_step(positives, negatives, opt)
        for _ in range(50):
            last = model.train_step(positives, negatives, opt)
        assert last < first

    def test_entities_stay_unit_norm(self, model):
        positives = np.array([[0, 1, 0]])
        negatives = np.array([[0, 2, 0]])
        model.train_step(positives, negatives, Adam(learning_rate=0.1))
        norms = np.linalg.norm(model.entity_embeddings[[0, 1, 2]], axis=-1)
        assert np.allclose(norms, 1.0)

    def test_multiple_negative_rounds(self, model):
        positives = np.array([[0, 1, 0], [2, 3, 1]])
        negatives = np.array([[0, 7, 0], [9, 3, 1], [0, 8, 0], [7, 3, 1]])
        loss = model.train_step(positives, negatives, SGD(learning_rate=0.01))
        assert np.isfinite(loss)

    def test_ragged_negatives_raise(self, model):
        with pytest.raises(ConfigError):
            model.train_step(
                np.array([[0, 1, 0], [2, 3, 1]]),
                np.array([[0, 7, 0], [9, 3, 1], [0, 8, 0]]),
                SGD(learning_rate=0.01),
            )

    def test_l2_norm_training(self, rng):
        model = TransE(NE, NR, DIM, rng, norm=2)
        positives = np.array([[0, 1, 0]])
        negatives = np.array([[0, 2, 0]])
        loss = model.train_step(positives, negatives, SGD(learning_rate=0.01))
        assert np.isfinite(loss)


class TestKnownLimitation:
    def test_symmetric_relation_forces_zero_relation_vector(self, tiny_dataset, rng):
        """§2.2.1: translation cannot model a symmetric relation except
        with r = 0 — score(h,t,r) = score(t,h,r) implies ||h+r-t|| = ||t+r-h||
        for all pairs.  We verify the geometric fact directly."""
        h = rng.normal(size=DIM)
        t = rng.normal(size=DIM)
        r = rng.normal(size=DIM)
        forward = -np.abs(h + r - t).sum()
        backward = -np.abs(t + r - h).sum()
        assert forward != pytest.approx(backward)
        assert -np.abs(h + 0 - t).sum() == pytest.approx(-np.abs(t + 0 - h).sum())

    def test_parameter_count(self, model):
        assert model.parameter_count() == NE * DIM + NR * DIM
