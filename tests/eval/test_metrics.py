"""Unit + property tests for :mod:`repro.eval.metrics`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.eval.metrics import RankingMetrics, compute_metrics, merge_metrics

rank_lists = st.lists(st.integers(1, 1000), min_size=1, max_size=100)


class TestComputeMetrics:
    def test_perfect_ranks(self):
        metrics = compute_metrics(np.ones(10))
        assert metrics.mrr == 1.0
        assert metrics.mr == 1.0
        assert metrics.hits[1] == 1.0
        assert metrics.hits[10] == 1.0

    def test_known_values(self):
        metrics = compute_metrics(np.array([1.0, 2.0, 4.0]))
        assert metrics.mrr == pytest.approx((1 + 0.5 + 0.25) / 3)
        assert metrics.mr == pytest.approx(7 / 3)
        assert metrics.hits[1] == pytest.approx(1 / 3)
        assert metrics.hits[3] == pytest.approx(2 / 3)
        assert metrics.hits[10] == pytest.approx(1.0)

    def test_fractional_ranks_from_tie_averaging(self):
        metrics = compute_metrics(np.array([1.5, 2.5]))
        assert metrics.hits[1] == 0.0
        assert metrics.hits[3] == 1.0

    def test_custom_hits_cutoffs(self):
        metrics = compute_metrics(np.array([4.0]), hits_at=(5,))
        assert metrics.hits_at(5) == 1.0
        with pytest.raises(EvaluationError):
            metrics.hits_at(10)

    def test_invalid_inputs_raise(self):
        with pytest.raises(EvaluationError):
            compute_metrics(np.array([]))
        with pytest.raises(EvaluationError):
            compute_metrics(np.array([0.5]))
        with pytest.raises(EvaluationError):
            compute_metrics(np.array([[1.0]]))
        with pytest.raises(EvaluationError):
            compute_metrics(np.array([1.0]), hits_at=(0,))

    @given(rank_lists)
    def test_property_mrr_in_unit_interval(self, ranks):
        metrics = compute_metrics(np.asarray(ranks, dtype=float))
        assert 0.0 < metrics.mrr <= 1.0

    @given(rank_lists)
    def test_property_hits_monotone_in_k(self, ranks):
        metrics = compute_metrics(np.asarray(ranks, dtype=float))
        assert metrics.hits[1] <= metrics.hits[3] <= metrics.hits[10]

    @given(rank_lists)
    def test_property_mrr_bounded_by_hits1_and_1(self, ranks):
        metrics = compute_metrics(np.asarray(ranks, dtype=float))
        assert metrics.hits[1] <= metrics.mrr


class TestMergeMetrics:
    def test_weighted_average(self):
        a = compute_metrics(np.array([1.0]))
        b = compute_metrics(np.array([2.0, 2.0, 2.0]))
        merged = merge_metrics(a, b)
        assert merged.num_ranks == 4
        assert merged.mrr == pytest.approx((1.0 + 3 * 0.5) / 4)

    def test_merge_equals_joint_computation(self, rng):
        ranks = rng.integers(1, 50, size=20).astype(float)
        joint = compute_metrics(ranks)
        merged = merge_metrics(compute_metrics(ranks[:7]), compute_metrics(ranks[7:]))
        assert merged.mrr == pytest.approx(joint.mrr)
        assert merged.mr == pytest.approx(joint.mr)
        for k in joint.hits:
            assert merged.hits[k] == pytest.approx(joint.hits[k])

    def test_mismatched_cutoffs_raise(self):
        a = compute_metrics(np.array([1.0]), hits_at=(1,))
        b = compute_metrics(np.array([1.0]), hits_at=(3,))
        with pytest.raises(EvaluationError):
            merge_metrics(a, b)


class TestFormatting:
    def test_row_contains_values(self):
        metrics = compute_metrics(np.array([1.0, 2.0]))
        row = metrics.format_row("MyModel")
        assert "MyModel" in row
        assert f"{metrics.mrr:6.3f}" in row

    def test_header_aligns_with_row(self):
        metrics = RankingMetrics(mrr=0.5, mr=2.0, hits={1: 0.3, 3: 0.5, 10: 0.9})
        header = RankingMetrics.header_row()
        row = metrics.format_row("x")
        assert "MRR" in header
        assert "Hit@10" in header
        assert len(header.split()) == len(row.split()) + 1  # label vs 2-word label
