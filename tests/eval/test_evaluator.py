"""Unit tests for the link-prediction evaluator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import KGEModel
from repro.errors import EvaluationError
from repro.eval.evaluator import LinkPredictionEvaluator


class OracleModel(KGEModel):
    """Scores a fixed set of triples 1.0 and everything else 0.0."""

    name = "oracle"

    def __init__(self, true_triples, num_entities, num_relations):
        self.true = {tuple(t) for t in true_triples}
        self.num_entities = num_entities
        self.num_relations = num_relations

    def score_triples(self, heads, tails, relations):
        return np.array(
            [1.0 if (h, t, r) in self.true else 0.0
             for h, t, r in zip(heads, tails, relations)]
        )

    def score_all_tails(self, heads, relations):
        return np.stack([
            np.array([1.0 if (h, e, r) in self.true else 0.0
                      for e in range(self.num_entities)])
            for h, r in zip(heads, relations)
        ])

    def score_all_heads(self, tails, relations):
        return np.stack([
            np.array([1.0 if (e, t, r) in self.true else 0.0
                      for e in range(self.num_entities)])
            for t, r in zip(tails, relations)
        ])

    def train_step(self, positives, negatives, optimizer):
        return 0.0


class TestOracleEvaluation:
    def test_oracle_with_filtering_gets_perfect_mrr(self, toy_dataset):
        all_triples = [tuple(t) for t in toy_dataset.all_triples()]
        model = OracleModel(all_triples, toy_dataset.num_entities, toy_dataset.num_relations)
        result = LinkPredictionEvaluator(toy_dataset).evaluate(model, "test")
        assert result.overall.mrr == pytest.approx(1.0)
        assert result.overall.hits[1] == pytest.approx(1.0)

    def test_raw_protocol_scores_lower_when_known_triples_compete(self, toy_dataset):
        """alice likes {bob, eve, dave-married}, so without filtering the
        oracle's competing true triples can push ranks down."""
        all_triples = [tuple(t) for t in toy_dataset.all_triples()]
        model = OracleModel(all_triples, toy_dataset.num_entities, toy_dataset.num_relations)
        filtered = LinkPredictionEvaluator(toy_dataset, filtered=True).evaluate(model, "valid")
        raw = LinkPredictionEvaluator(toy_dataset, filtered=False).evaluate(model, "valid")
        assert raw.overall.mrr <= filtered.overall.mrr

    def test_head_and_tail_sides_reported(self, toy_dataset):
        all_triples = [tuple(t) for t in toy_dataset.all_triples()]
        model = OracleModel(all_triples, toy_dataset.num_entities, toy_dataset.num_relations)
        result = LinkPredictionEvaluator(toy_dataset).evaluate(model, "test")
        assert result.tail_side.num_ranks == len(toy_dataset.test)
        assert result.head_side.num_ranks == len(toy_dataset.test)
        assert result.overall.num_ranks == 2 * len(toy_dataset.test)


class TestChunkingRegression:
    """Streaming chunk size must never change the metrics, bit for bit."""

    CHUNK_SIZES = (1, 7, 10_000)  # 10_000 >> any split: the full-batch case

    def _metrics_by_chunk_size(self, dataset, model, split="test"):
        results = {}
        for batch_size in self.CHUNK_SIZES:
            evaluator = LinkPredictionEvaluator(dataset, batch_size=batch_size)
            results[batch_size] = evaluator.evaluate(model, split)
        return results

    def test_trained_style_model_bit_identical(self, tiny_dataset):
        from repro.core.models import make_complex

        model = make_complex(
            tiny_dataset.num_entities,
            tiny_dataset.num_relations,
            16,
            np.random.default_rng(31),
        )
        results = self._metrics_by_chunk_size(tiny_dataset, model)
        reference = results[self.CHUNK_SIZES[0]]
        for batch_size, result in results.items():
            assert result.overall.mrr == reference.overall.mrr, batch_size
            assert result.overall.mr == reference.overall.mr, batch_size
            assert result.overall.hits == reference.overall.hits, batch_size
            assert result.tail_side.mrr == reference.tail_side.mrr, batch_size
            assert result.head_side.mrr == reference.head_side.mrr, batch_size

    def test_tie_heavy_model_bit_identical(self, tiny_dataset):
        """The oracle's 0/1 scores tie almost everywhere — the worst case
        for any chunking bug that perturbs tie resolution."""
        all_triples = [tuple(t) for t in tiny_dataset.all_triples()]
        model = OracleModel(
            all_triples, tiny_dataset.num_entities, tiny_dataset.num_relations
        )
        results = self._metrics_by_chunk_size(tiny_dataset, model)
        reference = results[self.CHUNK_SIZES[0]]
        for batch_size, result in results.items():
            assert result.overall.mrr == reference.overall.mrr, batch_size
            assert result.overall.mr == reference.overall.mr, batch_size
            assert result.overall.hits == reference.overall.hits, batch_size


class TestEvaluatorMechanics:
    def test_unknown_split_raises(self, toy_dataset):
        model = OracleModel([], toy_dataset.num_entities, toy_dataset.num_relations)
        with pytest.raises(EvaluationError, match="unknown split"):
            LinkPredictionEvaluator(toy_dataset).evaluate(model, "dev")

    def test_empty_triples_raise(self, toy_dataset):
        from repro.kg.triples import TripleSet

        model = OracleModel([], toy_dataset.num_entities, toy_dataset.num_relations)
        evaluator = LinkPredictionEvaluator(toy_dataset)
        with pytest.raises(EvaluationError, match="empty"):
            evaluator.evaluate_triples(
                model, TripleSet.empty(toy_dataset.num_entities, toy_dataset.num_relations)
            )

    def test_max_triples_caps_workload(self, toy_dataset):
        all_triples = [tuple(t) for t in toy_dataset.all_triples()]
        model = OracleModel(all_triples, toy_dataset.num_entities, toy_dataset.num_relations)
        evaluator = LinkPredictionEvaluator(toy_dataset)
        result = evaluator.evaluate_triples(model, toy_dataset.train, max_triples=3)
        assert result.overall.num_ranks == 6  # 3 triples x 2 sides

    def test_batch_size_does_not_change_result(self, toy_dataset):
        all_triples = [tuple(t) for t in toy_dataset.all_triples()]
        model = OracleModel(all_triples, toy_dataset.num_entities, toy_dataset.num_relations)
        big = LinkPredictionEvaluator(toy_dataset, batch_size=512).evaluate(model, "test")
        tiny = LinkPredictionEvaluator(toy_dataset, batch_size=1).evaluate(model, "test")
        assert big.overall.mrr == pytest.approx(tiny.overall.mrr)

    def test_bad_batch_size_raises(self, toy_dataset):
        with pytest.raises(EvaluationError):
            LinkPredictionEvaluator(toy_dataset, batch_size=0)

    def test_split_name_recorded(self, toy_dataset):
        all_triples = [tuple(t) for t in toy_dataset.all_triples()]
        model = OracleModel(all_triples, toy_dataset.num_entities, toy_dataset.num_relations)
        result = LinkPredictionEvaluator(toy_dataset).evaluate(model, "valid")
        assert result.split == "valid"
