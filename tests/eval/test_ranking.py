"""Unit + property tests for :mod:`repro.eval.ranking`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.eval.ranking import rank_of_true, ranks_from_score_matrix


class TestRankOfTrue:
    def test_best_candidate_rank_one(self):
        assert rank_of_true(np.array([1.0, 5.0, 2.0]), 1) == 1.0

    def test_worst_candidate(self):
        assert rank_of_true(np.array([1.0, 5.0, 2.0]), 0) == 3.0

    def test_tie_policies(self):
        scores = np.array([2.0, 2.0, 2.0, 1.0])
        assert rank_of_true(scores, 0, tie_policy="optimistic") == 1.0
        assert rank_of_true(scores, 0, tie_policy="pessimistic") == 3.0
        assert rank_of_true(scores, 0, tie_policy="average") == 2.0

    def test_filtering_removes_candidates(self):
        scores = np.array([1.0, 5.0, 4.0, 3.0])
        # without filtering, rank of index 3 is 3; filtering out 1 and 2 -> 1
        assert rank_of_true(scores, 3) == 3.0
        assert rank_of_true(scores, 3, filter_out=np.array([1, 2])) == 1.0

    def test_true_index_never_filtered(self):
        scores = np.array([1.0, 5.0])
        assert rank_of_true(scores, 1, filter_out=np.array([1])) == 1.0

    def test_unknown_policy_raises(self):
        with pytest.raises(EvaluationError):
            rank_of_true(np.array([1.0]), 0, tie_policy="hopeful")

    def test_bad_index_raises(self):
        with pytest.raises(EvaluationError):
            rank_of_true(np.array([1.0]), 5)

    def test_non_1d_raises(self):
        with pytest.raises(EvaluationError):
            rank_of_true(np.ones((2, 2)), 0)

    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=2, max_size=30),
           st.integers(0, 29))
    def test_property_rank_within_bounds(self, scores, index):
        scores = np.asarray(scores)
        index = index % len(scores)
        rank = rank_of_true(scores, index)
        assert 1.0 <= rank <= len(scores)

    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=2, max_size=30),
           st.integers(0, 29))
    def test_property_policy_ordering(self, scores, index):
        scores = np.asarray(scores)
        index = index % len(scores)
        opt = rank_of_true(scores, index, tie_policy="optimistic")
        avg = rank_of_true(scores, index, tie_policy="average")
        pes = rank_of_true(scores, index, tie_policy="pessimistic")
        assert opt <= avg <= pes
        assert avg == pytest.approx((opt + pes) / 2.0)


class TestTieHandling:
    """Tie-policy consistency on score vectors guaranteed to contain ties.

    Scores are drawn from a four-value alphabet, so for any non-trivial
    vector many candidates share the true score — exactly the regime
    (DistMult on inverse-paired data) where the convention matters.
    """

    @given(
        st.lists(st.sampled_from([-1.0, 0.0, 0.5, 2.0]), min_size=2, max_size=40),
        st.integers(0, 39),
    )
    def test_average_is_mean_of_optimistic_and_pessimistic(self, scores, index):
        scores = np.asarray(scores)
        index = index % len(scores)
        opt = rank_of_true(scores, index, tie_policy="optimistic")
        pes = rank_of_true(scores, index, tie_policy="pessimistic")
        avg = rank_of_true(scores, index, tie_policy="average")
        assert avg == (opt + pes) / 2.0

    @given(
        st.lists(st.sampled_from([-1.0, 0.0, 0.5, 2.0]), min_size=4, max_size=40),
        st.integers(0, 39),
        st.sets(st.integers(0, 39), max_size=10),
    )
    def test_average_is_mean_under_filtering(self, scores, index, filter_ids):
        scores = np.asarray(scores)
        index = index % len(scores)
        filter_out = np.array(
            sorted(i for i in filter_ids if i < len(scores)), dtype=np.int64
        )
        opt = rank_of_true(scores, index, filter_out, tie_policy="optimistic")
        pes = rank_of_true(scores, index, filter_out, tie_policy="pessimistic")
        avg = rank_of_true(scores, index, filter_out, tie_policy="average")
        assert avg == (opt + pes) / 2.0

    @given(st.integers(2, 30), st.integers(0, 29))
    def test_all_tied_vector_spans_full_range(self, size, index):
        scores = np.zeros(size)
        index = index % size
        assert rank_of_true(scores, index, tie_policy="optimistic") == 1.0
        assert rank_of_true(scores, index, tie_policy="pessimistic") == float(size)
        assert rank_of_true(scores, index, tie_policy="average") == (1.0 + size) / 2.0


class TestRankMatrix:
    def test_batched_matches_single(self, rng):
        matrix = rng.normal(size=(6, 20))
        true_indices = rng.integers(0, 20, size=6)
        ranks = ranks_from_score_matrix(matrix, true_indices)
        for row in range(6):
            assert ranks[row] == rank_of_true(matrix[row], int(true_indices[row]))

    def test_with_filters(self, rng):
        matrix = rng.normal(size=(2, 10))
        true_indices = np.array([0, 1])
        filters = [np.array([5, 6]), np.array([], dtype=np.int64)]
        ranks = ranks_from_score_matrix(matrix, true_indices, filters)
        assert ranks[0] == rank_of_true(matrix[0], 0, filters[0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(EvaluationError):
            ranks_from_score_matrix(np.ones((2, 5)), np.zeros(3, dtype=int))

    def test_filters_length_mismatch_raises(self):
        with pytest.raises(EvaluationError):
            ranks_from_score_matrix(np.ones((2, 5)), np.zeros(2, dtype=int), filters=[])
