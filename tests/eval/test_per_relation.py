"""Unit tests for the per-relation evaluation breakdown."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval.per_relation import (
    evaluate_per_relation,
    format_per_relation_table,
    symmetry_gap,
)
from tests.eval.test_evaluator import OracleModel


@pytest.fixture
def oracle(toy_dataset):
    all_triples = [tuple(t) for t in toy_dataset.all_triples()]
    return OracleModel(all_triples, toy_dataset.num_entities, toy_dataset.num_relations)


class TestEvaluatePerRelation:
    def test_only_relations_present_in_split(self, toy_dataset, oracle):
        # toy test split only contains 'likes' triples
        results = evaluate_per_relation(oracle, toy_dataset, split="test")
        assert [r.relation_name for r in results] == ["likes"]

    def test_oracle_perfect_everywhere(self, toy_dataset, oracle):
        for result in evaluate_per_relation(oracle, toy_dataset, split="test"):
            assert result.metrics.mrr == pytest.approx(1.0)

    def test_min_triples_filter(self, toy_dataset, oracle):
        results = evaluate_per_relation(oracle, toy_dataset, split="test", min_triples=99)
        assert results == []

    def test_bad_min_triples_raises(self, toy_dataset, oracle):
        with pytest.raises(EvaluationError):
            evaluate_per_relation(oracle, toy_dataset, min_triples=0)

    def test_train_split_covers_all_relations(self, toy_dataset, oracle):
        results = evaluate_per_relation(oracle, toy_dataset, split="train")
        assert {r.relation_name for r in results} == {"likes", "married_to"}


class TestFormatting:
    def test_table_contains_names_and_counts(self, toy_dataset, oracle):
        results = evaluate_per_relation(oracle, toy_dataset, split="train")
        table = format_per_relation_table(results)
        assert "likes" in table and "married_to" in table
        assert "MRR" in table

    def test_empty_raises(self):
        with pytest.raises(EvaluationError):
            format_per_relation_table([])


class TestSymmetryGap:
    def test_oracle_has_no_gap(self, toy_dataset, oracle):
        married = toy_dataset.relations.index("married_to")
        sym, other = symmetry_gap(oracle, toy_dataset, [married], split="train")
        assert sym == pytest.approx(1.0)
        assert other == pytest.approx(1.0)

    def test_one_sided_raises(self, toy_dataset, oracle):
        with pytest.raises(EvaluationError):
            symmetry_gap(oracle, toy_dataset, [], split="train")

    def test_distmult_gap_on_synthetic(self, tiny_dataset):
        """DistMult on unseen data: symmetric relations are easy, but its
        symmetric score cannot order the directions of inverse-paired
        relations, so per-relation Hits@1 drops on the asymmetric side.
        """
        from repro.core.models import make_distmult
        from repro.kg.synthetic import symmetric_relation_names
        from repro.training.trainer import Trainer, TrainingConfig

        model = make_distmult(tiny_dataset.num_entities, tiny_dataset.num_relations,
                              16, np.random.default_rng(0))
        config = TrainingConfig(epochs=200, batch_size=256, learning_rate=0.02,
                                validate_every=1000, patience=1000, seed=0)
        Trainer(tiny_dataset, config).train(model)
        symmetric = set(symmetric_relation_names())
        results = evaluate_per_relation(model, tiny_dataset, split="test")
        sym_hits = [r.metrics.hits[1] for r in results if r.relation_name in symmetric]
        asym_hits = [r.metrics.hits[1] for r in results if r.relation_name not in symmetric]
        assert np.mean(sym_hits) > np.mean(asym_hits)
