"""Property-based tests of the ranking protocol's defining invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.ranking import rank_of_true

score_vectors = st.lists(
    st.floats(-50, 50, allow_nan=False), min_size=3, max_size=25
)


@settings(max_examples=60, deadline=None)
@given(score_vectors, st.data())
def test_filtering_never_worsens_rank(scores, data):
    """Removing competitors can only improve (lower) the rank."""
    scores = np.asarray(scores)
    true_index = data.draw(st.integers(0, len(scores) - 1))
    candidates = [i for i in range(len(scores)) if i != true_index]
    filter_size = data.draw(st.integers(0, len(candidates)))
    filter_out = np.asarray(candidates[:filter_size], dtype=np.int64)
    raw = rank_of_true(scores, true_index)
    filtered = rank_of_true(scores, true_index, filter_out=filter_out)
    assert filtered <= raw


@settings(max_examples=60, deadline=None)
@given(score_vectors, st.data())
def test_filtering_everything_gives_rank_one(scores, data):
    scores = np.asarray(scores)
    true_index = data.draw(st.integers(0, len(scores) - 1))
    everyone_else = np.asarray(
        [i for i in range(len(scores)) if i != true_index], dtype=np.int64
    )
    assert rank_of_true(scores, true_index, filter_out=everyone_else) == 1.0


@settings(max_examples=60, deadline=None)
@given(score_vectors, st.data())
def test_rank_is_score_monotone(scores, data):
    """A candidate with a strictly higher score never ranks worse."""
    scores = np.asarray(scores)
    i = data.draw(st.integers(0, len(scores) - 1))
    j = data.draw(st.integers(0, len(scores) - 1))
    rank_i = rank_of_true(scores, i)
    rank_j = rank_of_true(scores, j)
    if scores[i] > scores[j]:
        assert rank_i <= rank_j
    elif scores[i] == scores[j]:
        assert rank_i == pytest.approx(rank_j)


@settings(max_examples=40, deadline=None)
@given(
    # Quantised scores: well-separated values so the affine transform
    # cannot create new floating-point ties (e.g. 1e-304 + 3.0 == 3.0).
    st.lists(st.integers(-200, 200), min_size=3, max_size=25),
    st.floats(0.1, 10, allow_nan=False),
    st.data(),
)
def test_rank_invariant_to_monotone_score_transform(scores, scale, data):
    """Ranks depend only on score order, not magnitude."""
    scores = np.asarray(scores, dtype=np.float64) * 0.25
    true_index = data.draw(st.integers(0, len(scores) - 1))
    original = rank_of_true(scores, true_index)
    transformed = rank_of_true(scale * scores + 3.0, true_index)
    assert transformed == pytest.approx(original)
