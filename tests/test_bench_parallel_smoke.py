"""Tier-1 smoke run of the parallel-evaluation benchmark.

Runs ``benchmarks/bench_parallel_eval.py`` at toy scale: the JSON
payload must have the documented schema and every sharded setting must
reproduce the serial evaluator's metrics bit-for-bit.  Throughput
assertions belong to the slow full-scale run only (and only on hosts
with enough cores).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.parallel

BENCH_PATH = Path(__file__).parent.parent / "benchmarks" / "bench_parallel_eval.py"


@pytest.fixture(scope="module")
def bench_module():
    spec = importlib.util.spec_from_file_location("bench_parallel_eval", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def smoke_results(bench_module, tmp_path_factory):
    json_path = tmp_path_factory.mktemp("bench") / "BENCH_parallel.json"
    results = bench_module.run_benchmark(fast=True, json_path=json_path)
    return results, json_path


def test_json_written_with_schema(smoke_results):
    results, json_path = smoke_results
    on_disk = json.loads(json_path.read_text(encoding="utf-8"))
    assert on_disk["config"]["fast"] is True
    assert on_disk["config"]["cpu_count"] >= 1
    assert on_disk["serial"]["seconds"] > 0
    assert on_disk["serial"]["triples_per_sec"] > 0
    assert set(on_disk["serial"]["metrics"]) == {"mrr", "mr", "hits", "num_ranks"}
    assert len(on_disk["sharded"]) == len(results["sharded"])
    for row in on_disk["sharded"]:
        for key in (
            "shard_axis",
            "shards",
            "workers",
            "seconds",
            "triples_per_sec",
            "speedup_vs_serial",
            "metrics_match_serial",
        ):
            assert key in row
        assert row["triples_per_sec"] > 0


def test_every_setting_bit_identical_to_serial(smoke_results):
    results, _ = smoke_results
    assert all(row["metrics_match_serial"] for row in results["sharded"])


def test_settings_cover_both_axes_and_workers(smoke_results):
    results, _ = smoke_results
    axes = {row["shard_axis"] for row in results["sharded"]}
    assert axes == {"triples", "entities"}
    assert any(row["workers"] > 0 for row in results["sharded"])


def test_format_results_renders_table(smoke_results, bench_module):
    results, _ = smoke_results
    table = bench_module.format_results(results)
    assert "serial evaluator" in table
    assert "speedup" in table
