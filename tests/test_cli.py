"""End-to-end tests of the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_requires_known_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "transformer"])


class TestWeightsCommand:
    def test_lists_presets_with_properties(self, capsys):
        assert main(["weights"]) == 0
        out = capsys.readouterr().out
        assert "complex" in out
        assert "quaternion" in out
        assert "good" in out and "poor" in out


class TestGenerateAndInspect:
    def test_generate_then_inspect(self, tmp_path, capsys):
        out_dir = tmp_path / "kg"
        assert main(["generate", str(out_dir), "--entities", "120",
                     "--clusters", "10", "--seed", "1"]) == 0
        generated = capsys.readouterr().out
        assert "entities" in generated
        assert (out_dir / "train.txt").exists()
        assert (out_dir / "valid.txt").exists()
        assert (out_dir / "test.txt").exists()

        assert main(["inspect", str(out_dir)]) == 0
        inspected = capsys.readouterr().out
        assert "inverse leakage" in inspected
        assert "hypernym" in inspected

    def test_inspect_missing_directory_fails_cleanly(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err


class TestTrainCommand:
    def test_train_on_synthetic(self, capsys):
        code = main([
            "train", "complex", "--entities", "100", "--total-dim", "8",
            "--epochs", "3", "--batch-size", "256", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "MRR" in out
        assert "Hits@10" in out

    def test_train_on_directory(self, tmp_path, capsys):
        out_dir = tmp_path / "kg"
        main(["generate", str(out_dir), "--entities", "100", "--clusters", "8"])
        capsys.readouterr()
        code = main([
            "train", "distmult", "--dataset", str(out_dir), "--total-dim", "8",
            "--epochs", "2", "--batch-size", "256", "--quiet",
        ])
        assert code == 0
        assert "DistMult" in capsys.readouterr().out
