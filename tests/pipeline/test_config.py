"""Unit tests for the declarative RunConfig tree and its validation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.pipeline.config import (
    DatasetSection,
    EvalSection,
    IngestSection,
    ModelSection,
    RunConfig,
    TrainingSection,
)
from repro.training.trainer import TrainingConfig

pytestmark = pytest.mark.pipeline


def toy_config(**overrides) -> RunConfig:
    base = dict(
        dataset=DatasetSection(
            params={"num_entities": 120, "num_clusters": 10, "num_domains": 4, "seed": 3}
        ),
        model=ModelSection(name="complex", total_dim=8),
        training=TrainingSection(epochs=2, batch_size=256),
        evaluation=EvalSection(),
        seed=0,
    )
    base.update(overrides)
    return RunConfig(**base)


class TestSections:
    def test_defaults_valid(self):
        RunConfig()

    def test_unknown_generator(self):
        with pytest.raises(ConfigError, match="dataset.generator"):
            DatasetSection(generator="wn18_real")

    def test_unknown_model_name(self):
        with pytest.raises(ConfigError, match="model.name"):
            ModelSection(name="transformer")

    def test_omega_preset_is_valid_model_name(self):
        assert ModelSection(name="bad_example_1").name == "bad_example_1"

    def test_omega_prefix_forces_preset_resolution(self):
        assert ModelSection(name="omega:distmult").name == "omega:distmult"
        with pytest.raises(ConfigError, match="model.name"):
            ModelSection(name="omega:learned")  # a factory, not a preset

    def test_model_ranges(self):
        with pytest.raises(ConfigError, match="model.total_dim"):
            ModelSection(total_dim=0)
        with pytest.raises(ConfigError, match="model.regularization"):
            ModelSection(regularization=-1.0)

    def test_training_bad_optimizer(self):
        with pytest.raises(ConfigError, match="optimizer"):
            TrainingSection(optimizer="rmsprop")

    def test_training_bad_sampler(self):
        with pytest.raises(ConfigError, match="negative_sampler"):
            TrainingSection(negative_sampler="adversarial")

    def test_eval_split(self):
        with pytest.raises(ConfigError, match="evaluation.split"):
            EvalSection(split="train")
        with pytest.raises(ConfigError, match="train_eval_triples"):
            EvalSection(train_eval_triples=0)

    def test_sections_must_be_typed(self):
        with pytest.raises(ConfigError, match="RunConfig.model"):
            RunConfig(model={"name": "complex"})


class TestTightenedTrainingValidation:
    """Satellite: field-named errors for the sharpened TrainingConfig checks."""

    def test_learning_rate_must_be_positive(self):
        with pytest.raises(ConfigError, match="learning_rate must be > 0"):
            TrainingConfig(learning_rate=0.0)
        with pytest.raises(ConfigError, match="learning_rate must be > 0"):
            TrainingConfig(learning_rate=-0.1)

    def test_patience_must_be_non_negative(self):
        with pytest.raises(ConfigError, match="patience must be >= 0"):
            TrainingConfig(patience=-1)

    def test_validate_every_must_be_at_least_one(self):
        with pytest.raises(ConfigError, match="validate_every must be >= 1"):
            TrainingConfig(validate_every=0)

    def test_unknown_optimizer_named(self):
        with pytest.raises(ConfigError, match="optimizer"):
            TrainingConfig(optimizer="rmsprop")


class TestIngestSection:
    def test_defaults_valid_and_splat_into_ingest_delta(self):
        import inspect

        from repro.ingest import ingest_delta

        section = IngestSection()
        knobs = section.ingest_kwargs()
        accepted = set(inspect.signature(ingest_delta).parameters)
        assert set(knobs) <= accepted, "section fields must mirror ingest_delta"

    def test_epochs_zero_allowed_negative_rejected(self):
        assert IngestSection(epochs=0).epochs == 0
        with pytest.raises(ConfigError, match="ingest.epochs"):
            IngestSection(epochs=-1)

    def test_unknown_optimizer_named(self):
        with pytest.raises(ConfigError, match="ingest.optimizer"):
            IngestSection(optimizer="sgd_with_momentum_v2")

    def test_unknown_initializer_named(self):
        with pytest.raises(ConfigError, match="ingest.grow_initializer"):
            IngestSection(grow_initializer="xavier_cubed")

    def test_drift_threshold_bounds(self):
        IngestSection(drift_threshold=1.0)
        with pytest.raises(ConfigError, match="drift_threshold"):
            IngestSection(drift_threshold=0.0)
        with pytest.raises(ConfigError, match="drift_threshold"):
            IngestSection(drift_threshold=1.5)

    def test_run_config_round_trips_ingest_section(self):
        config = toy_config(ingest=IngestSection(epochs=5, drift_threshold=0.3))
        restored = RunConfig.from_json(config.to_json())
        assert restored.ingest == config.ingest
        assert restored.ingest.epochs == 5

    def test_unknown_ingest_field_named(self):
        with pytest.raises(ConfigError, match="ingest field.*'warmup'"):
            RunConfig.from_dict({"ingest": {"warmup": 3}})


class TestSerialization:
    def test_json_round_trip(self):
        config = toy_config(label="round-trip")
        assert RunConfig.from_json(config.to_json()) == config

    def test_save_load_round_trip(self, tmp_path):
        config = toy_config(seed=7)
        path = config.save(tmp_path / "configs" / "run.json")
        assert path.exists()
        assert RunConfig.load(path) == config

    def test_from_dict_defaults(self):
        config = RunConfig.from_dict({"model": {"name": "cph"}})
        assert config.model.name == "cph"
        assert config.training.epochs == TrainingSection().epochs

    def test_unknown_top_level_key_named(self):
        with pytest.raises(ConfigError, match="run config.*'modle'"):
            RunConfig.from_dict({"modle": {}})

    def test_unknown_section_key_named(self):
        with pytest.raises(ConfigError, match="training field.*'learning_rte'"):
            RunConfig.from_dict({"training": {"learning_rte": 0.1}})

    def test_invalid_json_text(self):
        with pytest.raises(ConfigError, match="not valid JSON"):
            RunConfig.from_json("{not json")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            RunConfig.load(tmp_path / "nope.json")

    def test_non_integer_seed_named(self):
        with pytest.raises(ConfigError, match="'seed' must be an integer"):
            RunConfig.from_dict({"seed": None})
        with pytest.raises(ConfigError, match="'seed' must be an integer"):
            RunConfig.from_dict({"seed": "7"})

    def test_settings_round_trip_keeps_optimizer_and_sampler(self):
        from repro.experiments import ExperimentSettings

        settings = ExperimentSettings(optimizer="sgd", negative_sampler="bernoulli")
        config = settings.to_run_config()
        assert config.training.optimizer == "sgd"
        assert config.training.negative_sampler == "bernoulli"
        back = ExperimentSettings.from_run_config(config)
        assert back.optimizer == "sgd"
        assert back.negative_sampler == "bernoulli"
        assert back.training_config().optimizer == "sgd"


class TestSeeding:
    def test_model_init_seed_derivation(self):
        config = toy_config(seed=5)
        assert config.model_init_seed == 5 + 1000

    def test_seed_offset(self):
        config = toy_config(seed=5, model=ModelSection(name="cp", seed_offset=3))
        assert config.model_init_seed == 5 + 1000 + 3

    def test_explicit_init_seed_wins(self):
        config = toy_config(model=ModelSection(name="cp", init_seed=42, seed_offset=3))
        assert config.model_init_seed == 42
