"""run_pipeline + run-directory round-trip tests.

The central guarantee: a run directory written by ``run_pipeline`` can
be reloaded, re-evaluated (bit-identical metrics), and served without
retraining.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.learned import LearnedWeightModel
from repro.errors import ConfigError, ModelError
from repro.pipeline.config import DatasetSection, ModelSection, RunConfig, TrainingSection
from repro.pipeline.runner import (
    build_model,
    evaluate_run,
    load_run,
    run_pipeline,
    serve_run,
)

pytestmark = pytest.mark.pipeline


@pytest.fixture(scope="module")
def config() -> RunConfig:
    return RunConfig(
        dataset=DatasetSection(
            params={"num_entities": 120, "num_clusters": 10, "num_domains": 4, "seed": 3}
        ),
        model=ModelSection(name="cph", total_dim=8),
        training=TrainingSection(epochs=3, batch_size=256),
        seed=0,
        label="round-trip",
    )


@pytest.fixture(scope="module")
def run(config, tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("runs") / "cph"
    return run_pipeline(config, run_dir=run_dir)


class TestRunPipeline:
    def test_produces_metrics_and_history(self, run):
        assert 0.0 <= run.test_metrics.mrr <= 1.0
        assert run.epochs_run == 3
        assert len(run.training.history) == 3
        assert run.model.name == "CPh"

    def test_preset_name_builds_model(self, config):
        data = config.to_dict()
        data["model"]["name"] = "good_example_1"
        preset_config = RunConfig.from_dict(data)
        dataset = preset_config.dataset.build()
        model = build_model(preset_config, dataset)
        assert model.name == "Good example 1"

    def test_learned_model_with_options(self, config):
        data = config.to_dict()
        data["model"]["name"] = "learned"
        data["model"]["options"] = {"transform": "tanh", "sparse": True}
        learned_config = RunConfig.from_dict(data)
        dataset = learned_config.dataset.build()
        model = build_model(learned_config, dataset)
        assert isinstance(model, LearnedWeightModel)
        assert model.transform.name == "tanh"
        assert model.sparsity is not None

    def test_loss_option_resolves_through_registry(self, config):
        data = config.to_dict()
        data["model"]["options"] = {"loss": "logistic"}
        dataset_config = RunConfig.from_dict(data)
        dataset = dataset_config.dataset.build()
        model = build_model(dataset_config, dataset)
        assert model.loss.name == "logistic"

    def test_pairwise_loss_rejected_at_construction(self, config):
        """margin ranking lacks grad_score; fail before training starts."""
        data = config.to_dict()
        data["model"]["options"] = {"loss": "margin"}
        bad_config = RunConfig.from_dict(data)
        dataset = bad_config.dataset.build()
        with pytest.raises(ConfigError, match="grad_score"):
            build_model(bad_config, dataset)

    def test_omega_prefix_reaches_shadowed_preset(self, config):
        """'distmult' is the n=1 factory; 'omega:distmult' the 2-embedding preset."""
        data = config.to_dict()
        data["model"]["name"] = "distmult"
        dataset = RunConfig.from_dict(data).dataset.build()
        factory_model = build_model(RunConfig.from_dict(data), dataset)
        data["model"]["name"] = "omega:distmult"
        preset_model = build_model(RunConfig.from_dict(data), dataset)
        assert factory_model.entity_embeddings.shape[1] == 1  # one vector, full dim
        assert preset_model.entity_embeddings.shape[1] == 2  # Table 1 derivation
        assert factory_model.dim == 2 * preset_model.dim


class TestRunDirectory:
    def test_artifact_files(self, run):
        assert (run.run_dir / "config.json").exists()
        assert (run.run_dir / "checkpoint" / "weights.npz").exists()
        assert (run.run_dir / "checkpoint" / "meta.json").exists()
        assert (run.run_dir / "history.json").exists()
        assert (run.run_dir / "metrics.json").exists()

    def test_config_reloads_identically(self, run, config):
        assert load_run(run.run_dir).config == config

    def test_history_json_matches(self, run):
        stored = json.loads((run.run_dir / "history.json").read_text())
        assert stored["epochs_run"] == run.epochs_run
        assert [r["loss"] for r in stored["records"]] == run.training.history.losses

    def test_stored_metrics_match_in_memory(self, run):
        loaded = load_run(run.run_dir)
        assert set(loaded.metrics) == set(run.metrics)
        for split, metrics in run.metrics.items():
            assert loaded.metrics[split].mrr == metrics.mrr
            assert loaded.metrics[split].hits == metrics.hits

    def test_reevaluation_is_bit_identical(self, run):
        """Reload checkpoint + config, regenerate the dataset, evaluate:
        every metric must equal the in-memory RunResult exactly."""
        recomputed = evaluate_run(run.run_dir)
        assert set(recomputed) == set(run.metrics)
        for split in run.metrics:
            assert recomputed[split].mrr == run.metrics[split].mrr
            assert recomputed[split].mr == run.metrics[split].mr
            assert recomputed[split].hits == run.metrics[split].hits
            assert recomputed[split].num_ranks == run.metrics[split].num_ranks

    def test_serve_run_without_retraining(self, run):
        predictor = serve_run(run.run_dir)
        result = predictor.top_k_tails([0], [0], k=5)
        assert result.ids.shape == (1, 5)
        assert np.isfinite(result.scores).any()

    def test_load_run_rejects_non_run_dir(self, tmp_path):
        with pytest.raises(ModelError, match="not a pipeline run directory"):
            load_run(tmp_path)

    def test_baseline_models_not_checkpointable(self, config):
        from repro.baselines import TransE
        from repro.pipeline.runner import train_and_evaluate

        dataset = config.dataset.build()
        model = TransE(dataset.num_entities, dataset.num_relations, dim=8,
                       rng=np.random.default_rng(0))
        with pytest.raises(ConfigError, match="checkpointable"):
            train_and_evaluate(config, dataset, model, run_dir="/tmp/should-not-exist")


class TestCLIIntegration:
    def test_train_run_dir_then_predict(self, tmp_path, capsys):
        from repro.cli import main

        run_dir = tmp_path / "run"
        code = main([
            "train", "complex", "--entities", "100", "--total-dim", "8",
            "--epochs", "2", "--batch-size", "256", "--quiet",
            "--run-dir", str(run_dir),
        ])
        assert code == 0
        assert "run artifacts written" in capsys.readouterr().out
        assert (run_dir / "checkpoint" / "weights.npz").exists()

        # predict straight from the run directory: no --dataset, no retraining.
        loaded = load_run(run_dir)
        dataset = loaded.build_dataset()
        head = dataset.entities.name(0)
        relation = dataset.relations.name(0)
        code = main([
            "predict", "--run-dir", str(run_dir),
            "--head", head, "--relation", relation, "-k", "3",
        ])
        assert code == 0
        assert "top-3 tail candidates" in capsys.readouterr().out

    def test_train_with_config_file(self, tmp_path, capsys):
        from repro.cli import main

        config = RunConfig(
            dataset=DatasetSection(
                params={"num_entities": 100, "num_clusters": 8, "num_domains": 3, "seed": 1}
            ),
            model=ModelSection(name="distmult", total_dim=8),
            training=TrainingSection(epochs=2, batch_size=256),
        )
        path = config.save(tmp_path / "run.json")
        assert main(["train", "--config", str(path)]) == 0
        assert "MRR" in capsys.readouterr().out

    def test_predict_without_sources_fails_cleanly(self, capsys):
        from repro.cli import main

        assert main(["predict"]) == 2
        assert "checkpoint directory or --run-dir" in capsys.readouterr().err
