"""Grid expansion and sweep reproducibility tests."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.pipeline.config import DatasetSection, ModelSection, RunConfig, TrainingSection
from repro.pipeline.sweep import apply_overrides, expand_grid, sweep

pytestmark = pytest.mark.pipeline


@pytest.fixture(scope="module")
def base() -> RunConfig:
    return RunConfig(
        dataset=DatasetSection(
            params={"num_entities": 100, "num_clusters": 8, "num_domains": 3, "seed": 1}
        ),
        model=ModelSection(name="complex", total_dim=8),
        training=TrainingSection(epochs=2, batch_size=256),
        seed=0,
    )


class TestExpandGrid:
    def test_empty_grid_is_one_point(self):
        assert expand_grid({}) == [{}]

    def test_product_and_order(self):
        points = expand_grid({"b": [1, 2], "a": ["x"]})
        # Keys are sorted, product is row-major over sorted keys.
        assert points == [{"a": "x", "b": 1}, {"a": "x", "b": 2}]

    def test_order_independent_of_insertion(self):
        grid1 = {"training.epochs": [1, 2], "model.total_dim": [8, 16]}
        grid2 = {"model.total_dim": [8, 16], "training.epochs": [1, 2]}
        assert expand_grid(grid1) == expand_grid(grid2)

    def test_rejects_scalar_values(self):
        with pytest.raises(ConfigError, match="sequence"):
            expand_grid({"training.epochs": 5})
        with pytest.raises(ConfigError, match="sequence"):
            expand_grid({"model.name": "complex"})

    def test_rejects_empty_candidates(self):
        with pytest.raises(ConfigError, match="non-empty"):
            expand_grid({"training.epochs": []})


class TestApplyOverrides:
    def test_nested_paths(self, base):
        config = apply_overrides(
            base,
            {"training.learning_rate": 0.5, "model.total_dim": 16, "seed": 9},
        )
        assert config.training.learning_rate == 0.5
        assert config.model.total_dim == 16
        assert config.seed == 9
        assert base.training.learning_rate != 0.5  # original untouched

    def test_free_form_params_accept_new_keys(self, base):
        config = apply_overrides(base, {"dataset.params.num_entities": 150})
        assert config.dataset.params["num_entities"] == 150
        config = apply_overrides(base, {"model.options.transform": "tanh"})
        assert config.model.options["transform"] == "tanh"

    def test_unknown_path_raises(self, base):
        with pytest.raises(ConfigError, match="unknown config path"):
            apply_overrides(base, {"training.learning_rte": 0.5})
        with pytest.raises(ConfigError, match="unknown config path"):
            apply_overrides(base, {"optimizer.name": "adam"})

    def test_overrides_revalidate(self, base):
        with pytest.raises(ConfigError, match="learning_rate"):
            apply_overrides(base, {"training.learning_rate": -1.0})


class TestSweep:
    GRID = {"training.learning_rate": [0.02, 0.05], "model.name": ["distmult", "cph"]}

    def test_runs_every_point(self, base):
        runs = sweep(base, self.GRID)
        assert len(runs) == 4
        assert [run.index for run in runs] == [0, 1, 2, 3]
        assert len({run.label for run in runs}) == 4

    def test_reproducible_across_invocations(self, base):
        """Satellite: same grid spec + seed must give bit-identical
        per-run metrics on a second invocation."""
        first = sweep(base, self.GRID, seeds=[0])
        second = sweep(base, self.GRID, seeds=[0])
        assert len(first) == len(second) == 4
        for a, b in zip(first, second):
            assert a.overrides == b.overrides
            assert a.config == b.config
            assert a.result.test_metrics.mrr == b.result.test_metrics.mrr
            assert a.result.test_metrics.mr == b.result.test_metrics.mr
            assert a.result.test_metrics.hits == b.result.test_metrics.hits
            assert a.result.training.history.losses == b.result.training.history.losses

    def test_seeds_cross_grid(self, base):
        runs = sweep(base, {"model.name": ["distmult"]}, seeds=[0, 1])
        assert len(runs) == 2
        assert [run.config.seed for run in runs] == [0, 1]
        # Different training seeds shuffle/sample differently.
        assert (
            runs[0].result.training.history.losses
            != runs[1].result.training.history.losses
        )

    def test_run_root_persists_children(self, base, tmp_path):
        runs = sweep(base, {"model.name": ["distmult", "cph"]}, run_root=tmp_path)
        dirs = sorted(p.name for p in tmp_path.iterdir())
        assert len(dirs) == 2
        assert dirs[0].startswith("run000-")
        for run in runs:
            assert run.result.run_dir is not None
            assert (run.result.run_dir / "checkpoint" / "weights.npz").exists()

    def test_empty_seeds_rejected(self, base):
        with pytest.raises(ConfigError, match="seeds"):
            sweep(base, {}, seeds=[])
