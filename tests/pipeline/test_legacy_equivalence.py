"""Regression: pipeline metrics are bit-identical to the pre-refactor path.

The pre-refactor harness wired dataset → model → Trainer → evaluator by
hand (`experiments.run_experiment_row` before PR 3); these tests inline
that exact recipe — same RNG streams, same call order — and assert the
declarative pipeline reproduces it float-for-float for the paper-table
row shapes (fixed-ω rows, the n=1 DistMult special case, and learned-ω
rows).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import make_distmult, make_learned_weight_model, make_model
from repro.core.weights import PRESETS
from repro.eval.evaluator import LinkPredictionEvaluator
from repro.experiments import ExperimentSettings, build_dataset, run_experiment_row
from repro.kg.synthetic import SyntheticKGConfig
from repro.paper_tables import TABLE2_ROWS, run_table2
from repro.pipeline.config import ModelSection
from repro.pipeline.runner import run_pipeline
from repro.training.trainer import Trainer

pytestmark = pytest.mark.pipeline


@pytest.fixture(scope="module")
def settings() -> ExperimentSettings:
    return ExperimentSettings(
        dataset_config=SyntheticKGConfig(
            num_entities=100, num_clusters=8, num_domains=3, seed=5
        ),
        total_dim=8,
        epochs=3,
        batch_size=256,
    )


@pytest.fixture(scope="module")
def dataset(settings):
    return build_dataset(settings)


def legacy_row(model, dataset, settings, evaluate_train=False):
    """The pre-refactor recipe, verbatim: manual Trainer + evaluator."""
    trainer = Trainer(dataset, settings.training_config())
    result = trainer.train(model)
    evaluator = LinkPredictionEvaluator(dataset)
    test_metrics = evaluator.evaluate(model, split="test").overall
    train_metrics = None
    if evaluate_train:
        train_metrics = evaluator.evaluate_triples(
            model, dataset.train, split_name="train",
            max_triples=settings.train_eval_triples,
        ).overall
    return test_metrics, train_metrics, result.epochs_run


def assert_metrics_equal(a, b):
    assert a.mrr == b.mrr
    assert a.mr == b.mr
    assert a.hits == b.hits
    assert a.num_ranks == b.num_ranks


class TestPipelineMatchesLegacyPath:
    def test_fixed_omega_row(self, dataset, settings):
        offset = 3  # the CPh row of Table 2
        legacy_model = make_model(
            PRESETS.get("cph"), dataset.num_entities, dataset.num_relations,
            np.random.default_rng(settings.seed + 1000 + offset),
            total_dim=settings.total_dim, regularization=settings.regularization,
        )
        legacy_test, legacy_train, legacy_epochs = legacy_row(
            legacy_model, dataset, settings, evaluate_train=True
        )

        config = settings.to_run_config(
            model=ModelSection(
                name="cph", total_dim=settings.total_dim,
                regularization=settings.regularization, seed_offset=offset,
            ),
            evaluate_train=True,
        )
        result = run_pipeline(config, dataset=dataset)
        assert_metrics_equal(result.test_metrics, legacy_test)
        assert_metrics_equal(result.train_metrics, legacy_train)
        assert result.epochs_run == legacy_epochs

    def test_distmult_n1_row(self, dataset, settings):
        """The n=1 special case: make_distmult vs the distmult_n1 preset."""
        legacy_model = make_distmult(
            dataset.num_entities, dataset.num_relations, settings.total_dim,
            np.random.default_rng(settings.seed + 1000),
            regularization=settings.regularization,
        )
        legacy_test, _, _ = legacy_row(legacy_model, dataset, settings)

        config = settings.to_run_config(
            model=ModelSection(
                name="distmult_n1", total_dim=settings.total_dim,
                regularization=settings.regularization,
            )
        )
        result = run_pipeline(config, dataset=dataset)
        assert_metrics_equal(result.test_metrics, legacy_test)

    def test_learned_omega_row(self, dataset, settings):
        offset = 101
        legacy_model = make_learned_weight_model(
            dataset.num_entities, dataset.num_relations, settings.total_dim,
            np.random.default_rng(settings.seed + 1000 + offset),
            transform="tanh", sparse=True, regularization=settings.regularization,
        )
        legacy_test, _, _ = legacy_row(legacy_model, dataset, settings)
        legacy_omega = legacy_model.current_weight_vector()

        config = settings.to_run_config(
            model=ModelSection(
                name="learned", total_dim=settings.total_dim,
                regularization=settings.regularization, seed_offset=offset,
                options={"transform": "tanh", "sparse": True},
            )
        )
        result = run_pipeline(config, dataset=dataset)
        assert_metrics_equal(result.test_metrics, legacy_test)
        assert np.array_equal(
            result.model.current_weight_vector().tensor, legacy_omega.tensor
        )

    def test_run_experiment_row_shim_matches_pipeline(self, dataset, settings):
        """The legacy entry point and run_pipeline share one engine."""
        shim_model = make_model(
            PRESETS.get("complex"), dataset.num_entities, dataset.num_relations,
            np.random.default_rng(settings.seed + 1000),
            total_dim=settings.total_dim, regularization=settings.regularization,
        )
        shim = run_experiment_row(shim_model, dataset, settings, label="X")

        config = settings.to_run_config(
            model=ModelSection(
                name="complex", total_dim=settings.total_dim,
                regularization=settings.regularization,
            )
        )
        result = run_pipeline(config, dataset=dataset)
        assert_metrics_equal(result.test_metrics, shim.test_metrics)

    def test_table2_full_sweep_matches_legacy(self, dataset, settings):
        """Every Table 2 row through the pipeline vs the manual loop."""
        legacy = []
        for offset, (label, name, with_train) in enumerate(TABLE2_ROWS):
            rng = np.random.default_rng(settings.seed + 1000 + offset)
            if name == "distmult_n1":
                model = make_distmult(
                    dataset.num_entities, dataset.num_relations, settings.total_dim,
                    rng, regularization=settings.regularization,
                )
            else:
                model = make_model(
                    PRESETS.get(name), dataset.num_entities, dataset.num_relations,
                    rng, total_dim=settings.total_dim,
                    regularization=settings.regularization,
                )
            test_metrics, train_metrics, _ = legacy_row(
                model, dataset, settings, evaluate_train=with_train
            )
            legacy.append((label, test_metrics, train_metrics))

        rows = run_table2(dataset, settings)
        assert len(rows) == len(legacy)
        for row, (label, test_metrics, train_metrics) in zip(rows, legacy):
            assert row.label == label
            assert_metrics_equal(row.test_metrics, test_metrics)
            if train_metrics is None:
                assert row.train_metrics is None
            else:
                assert_metrics_equal(row.train_metrics, train_metrics)
