"""Unit tests for the component registry layer."""

from __future__ import annotations

import pytest

from repro.core.models import MODEL_FACTORIES
from repro.core.weights import PRESETS
from repro.errors import ConfigError
from repro.nn.losses import LOSSES
from repro.nn.optimizers import OPTIMIZERS
from repro.pipeline.components import DATASET_GENERATORS
from repro.pipeline.registry import Registry
from repro.training.negatives import NEGATIVE_SAMPLERS

pytestmark = pytest.mark.pipeline


class TestRegistry:
    def test_register_decorator_and_lookup(self):
        reg = Registry("widget")

        @reg.register("Foo")
        def make_foo():
            return "foo"

        assert reg.get("foo") is make_foo
        assert reg.get("FOO") is make_foo  # case-insensitive
        assert make_foo() == "foo"  # decorator returns the function unchanged

    def test_register_direct_form(self):
        reg = Registry("widget")
        sentinel = object()
        assert reg.register("x", sentinel) is sentinel
        assert reg["x"] is sentinel

    def test_duplicate_rejected(self):
        reg = Registry("widget")
        reg.register("a", 1)
        with pytest.raises(ConfigError, match="duplicate widget"):
            reg.register("A", 2)

    def test_unknown_lists_known(self):
        reg = Registry("widget")
        reg.register("alpha", 1)
        reg.register("beta", 2)
        with pytest.raises(ConfigError, match="unknown widget 'gamma'.*alpha, beta"):
            reg.get("gamma")

    def test_get_default(self):
        reg = Registry("widget")
        assert reg.get("missing", None) is None

    def test_lookup_error_is_both_config_and_key_error(self):
        reg = Registry("widget")
        with pytest.raises(ConfigError):
            reg["missing"]
        with pytest.raises(KeyError):  # dict-style except KeyError still works
            reg["missing"]

    def test_contains_never_raises(self):
        reg = Registry("widget")
        assert "" not in reg
        assert None not in reg
        assert 42 not in reg

    def test_mapping_protocol(self):
        reg = Registry("widget")
        reg.register("b", 2)
        reg.register("a", 1)
        assert len(reg) == 2
        assert sorted(reg) == ["a", "b"]
        assert dict(reg.items()) == {"a": 1, "b": 2}
        assert "a" in reg and "A" in reg and "c" not in reg
        assert 42 not in reg  # non-string keys never match
        assert reg.names() == ["a", "b"]

    def test_invalid_names_rejected(self):
        reg = Registry("widget")
        with pytest.raises(ConfigError):
            reg.register("", 1)
        with pytest.raises(ConfigError):
            reg.register(None, 1)


class TestBuiltinRegistries:
    def test_model_factories(self):
        assert {"distmult", "complex", "cp", "cph", "quaternion", "learned"} <= set(
            MODEL_FACTORIES
        )

    def test_omega_presets(self):
        assert {"complex", "cph", "uniform", "quaternion", "distmult_n1"} <= set(PRESETS)

    def test_optimizers(self):
        assert set(OPTIMIZERS) == {"sgd", "adagrad", "adam"}

    def test_losses(self):
        assert {"logistic", "margin"} <= set(LOSSES)

    def test_negative_samplers(self):
        assert {"uniform", "bernoulli"} <= set(NEGATIVE_SAMPLERS)

    def test_dataset_generators(self):
        assert {"synthetic_wn18", "synthetic_fb15k", "directory"} <= set(
            DATASET_GENERATORS
        )


class TestCLIDerivesChoicesFromRegistry:
    def test_learned_model_is_a_train_choice(self):
        # "learned" exists only via registration, never a hardcoded list.
        from repro.cli import build_parser

        args = build_parser().parse_args(["train", "learned", "--epochs", "1"])
        assert args.model == "learned"

    def test_newly_registered_model_appears_automatically(self):
        from repro import cli

        def make_stub(num_entities, num_relations, total_dim, rng, **kwargs):
            raise NotImplementedError

        MODEL_FACTORIES.register("stub_for_cli_test", make_stub)
        try:
            args = cli.build_parser().parse_args(["train", "stub_for_cli_test"])
            assert args.model == "stub_for_cli_test"
        finally:
            # Keep the global registry clean for the model-iteration tests.
            MODEL_FACTORIES._entries.pop("stub_for_cli_test")
