"""Tier-1 smoke run of the reliability benchmark.

Runs ``benchmarks/bench_reliability.py`` at toy scale: the JSON payload
must have the documented schema and every recovery scenario must end
bit-identical to its fault-free reference.  The < 5% atomic-write
overhead target belongs to the slow full-scale run only — a toy
pipeline is too short to amortise fsyncs against.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.reliability

BENCH_PATH = Path(__file__).parent.parent / "benchmarks" / "bench_reliability.py"


@pytest.fixture(scope="module")
def bench_module():
    spec = importlib.util.spec_from_file_location("bench_reliability", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def smoke_results(bench_module, tmp_path_factory):
    json_path = tmp_path_factory.mktemp("bench") / "BENCH_reliability.json"
    results = bench_module.run_benchmark(fast=True, json_path=json_path)
    return results, json_path


def test_json_written_with_schema(smoke_results):
    _, json_path = smoke_results
    on_disk = json.loads(json_path.read_text(encoding="utf-8"))
    assert on_disk["config"]["fast"] is True
    assert on_disk["config"]["overhead_target_pct"] == 5.0
    atomic = on_disk["atomic_write"]
    for key in (
        "num_artifacts",
        "artifact_bytes",
        "write_repeats",
        "plain_seconds",
        "atomic_seconds",
        "per_write_overhead_pct",
        "pipeline_seconds",
        "hot_path_overhead_pct",
        "target_pct",
    ):
        assert key in atomic
    assert atomic["num_artifacts"] > 0
    assert atomic["pipeline_seconds"] > 0
    assert atomic["hot_path_overhead_pct"] >= 0
    assert set(on_disk["recovery"]) == {
        "eval_crash_retry",
        "sweep_resume_heal",
        "degraded_serving",
    }


def test_every_recovery_scenario_bit_identical(smoke_results):
    results, _ = smoke_results
    for name, scenario in results["recovery"].items():
        assert scenario["bit_identical"], (name, scenario)


def test_resume_healed_exactly_one_child(smoke_results):
    results, _ = smoke_results
    assert results["recovery"]["sweep_resume_heal"]["statuses"] == [
        "completed",
        "cached",
    ]


def test_degraded_serving_was_actually_degraded(smoke_results):
    results, _ = smoke_results
    assert results["recovery"]["degraded_serving"]["deployment_degraded"] is True


def test_format_results_renders_table(smoke_results, bench_module):
    results, _ = smoke_results
    table = bench_module.format_results(results)
    assert "hot-path overhead" in table
    assert "recovery scenario" in table
