"""Tier-1 smoke run of the observability overhead benchmark.

Runs ``benchmarks/bench_obs_overhead.py`` at toy scale: the JSON payload
must have the documented schema and the hook micro-benchmarks must have
actually executed.  The < 3% enabled / < 0.5% disabled overhead targets
belong to the slow full-scale run only — a toy pipeline is too short to
average out timer noise.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.obs

BENCH_PATH = Path(__file__).parent.parent / "benchmarks" / "bench_obs_overhead.py"


@pytest.fixture(scope="module")
def bench_module():
    spec = importlib.util.spec_from_file_location("bench_obs_overhead", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def smoke_results(bench_module, tmp_path_factory):
    json_path = tmp_path_factory.mktemp("bench") / "BENCH_obs.json"
    results = bench_module.run_benchmark(fast=True, json_path=json_path)
    return results, json_path


def test_json_written_with_schema(smoke_results):
    _, json_path = smoke_results
    on_disk = json.loads(json_path.read_text(encoding="utf-8"))
    assert on_disk["config"]["fast"] is True
    assert on_disk["config"]["enabled_target_pct"] == 3.0
    assert on_disk["config"]["disabled_target_pct"] == 0.5
    for key in (
        "loops",
        "noop_inc_ns",
        "noop_observe_ns",
        "noop_trace_scope_ns",
        "live_inc_ns",
        "live_observe_ns",
    ):
        assert key in on_disk["noop_hooks"]
    pipeline = on_disk["pipeline"]
    for key in (
        "repeats",
        "disabled_seconds",
        "enabled_seconds",
        "enabled_overhead_pct",
        "disabled_overhead_pct",
        "hook_calls",
    ):
        assert key in pipeline
    for key in ("requests", "plain_seconds", "traced_seconds",
                "traced_overhead_pct"):
        assert key in on_disk["serving"]


def test_noop_hooks_are_cheap_and_measured(smoke_results):
    results, _ = smoke_results
    hooks = results["noop_hooks"]
    assert hooks["noop_inc_ns"] > 0
    # A disabled hook is one None-check; even a slow interpreter stays
    # far under 100 microseconds per call.
    assert hooks["noop_inc_ns"] < 100_000
    assert hooks["noop_trace_scope_ns"] < 100_000


def test_enabled_run_actually_recorded_telemetry(smoke_results):
    results, _ = smoke_results
    pipeline = results["pipeline"]
    assert pipeline["hook_calls"] > 0
    assert pipeline["disabled_seconds"] > 0
    assert pipeline["enabled_seconds"] > 0
    assert pipeline["enabled_overhead_pct"] >= 0
    assert pipeline["disabled_overhead_pct"] >= 0


def test_serving_paths_both_timed(smoke_results):
    results, _ = smoke_results
    serving = results["serving"]
    assert serving["plain_seconds"] > 0
    assert serving["traced_seconds"] > 0
    assert serving["requests"] > 0


def test_format_results_renders_table(smoke_results, bench_module):
    results, _ = smoke_results
    table = bench_module.format_results(results)
    assert "no-op hooks" in table
    assert "enabled overhead" in table
    assert "disabled-path tax" in table
