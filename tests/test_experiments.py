"""Unit tests for the shared experiment harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import make_complex
from repro.errors import ConfigError
from repro.experiments import (
    ExperimentRow,
    ExperimentSettings,
    build_dataset,
    format_table,
    run_experiment_row,
    seeded_rng,
)
from repro.eval.metrics import RankingMetrics
from repro.kg.synthetic import SyntheticKGConfig


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(
        dataset_config=SyntheticKGConfig(
            num_entities=120, num_clusters=10, num_domains=4, seed=3
        ),
        total_dim=8,
        epochs=3,
        batch_size=256,
    )


class TestSettings:
    def test_training_config_mirrors_settings(self, settings):
        config = settings.training_config()
        assert config.epochs == 3
        assert config.batch_size == 256
        assert config.num_negatives == settings.num_negatives

    def test_build_dataset_deterministic(self, settings):
        a = build_dataset(settings)
        b = build_dataset(settings)
        assert a.train.array.tolist() == b.train.array.tolist()

    def test_seeded_rng_offsets_differ(self, settings):
        a = seeded_rng(settings, 0).normal()
        b = seeded_rng(settings, 1).normal()
        assert a != b


class TestRunRow:
    def test_produces_metrics(self, settings):
        dataset = build_dataset(settings)
        model = make_complex(
            dataset.num_entities, dataset.num_relations,
            total_dim=settings.total_dim, rng=seeded_rng(settings),
        )
        row = run_experiment_row(model, dataset, settings, evaluate_train=True)
        assert 0.0 <= row.test_metrics.mrr <= 1.0
        assert row.train_metrics is not None
        assert row.epochs_run == 3
        assert row.label == "ComplEx"

    def test_custom_label(self, settings):
        dataset = build_dataset(settings)
        model = make_complex(
            dataset.num_entities, dataset.num_relations,
            total_dim=settings.total_dim, rng=seeded_rng(settings),
        )
        row = run_experiment_row(model, dataset, settings, label="Row A")
        assert row.label == "Row A"


class TestFormatTable:
    def _row(self, label, with_train=False):
        metrics = RankingMetrics(mrr=0.9, mr=2.0, hits={1: 0.8, 3: 0.9, 10: 1.0}, num_ranks=5)
        return ExperimentRow(
            label=label,
            test_metrics=metrics,
            train_metrics=metrics if with_train else None,
        )

    def test_contains_labels_and_header(self):
        table = format_table("Table 2", [self._row("DistMult"), self._row("CP")])
        assert "Table 2" in table
        assert "DistMult" in table
        assert "MRR" in table

    def test_train_section_appended(self):
        table = format_table("T", [self._row("ComplEx", with_train=True)])
        assert "ComplEx on train" in table

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            format_table("T", [])
