"""Package-level checks: public API surface and metadata."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicAPI:
    def test_version_string(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.core.algebra",
            "repro.kg",
            "repro.nn",
            "repro.training",
            "repro.eval",
            "repro.baselines",
            "repro.analysis",
            "repro.cli",
            "repro.experiments",
            "repro.paper_tables",
            "repro.errors",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_error_hierarchy_rooted(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, errors.ReproError)

    def test_docstrings_on_public_entry_points(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{name} is missing a docstring"
