"""Unit tests for :mod:`repro.core.weights` — the Table 1 presets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import weights as W
from repro.core.weights import WeightVector, get_preset
from repro.errors import ConfigError


class TestWeightVector:
    def test_flatten_row_major_table1_order(self):
        wv = WeightVector.from_flat("x", (1, 2, 3, 4, 5, 6, 7, 8))
        # (i, j, k) row-major: position 2 is (h1, t2, r1)
        assert wv.tensor[0, 1, 0] == 3.0
        assert wv.tensor[1, 0, 1] == 6.0
        assert wv.flatten() == (1, 2, 3, 4, 5, 6, 7, 8)

    def test_tensor_immutable(self):
        wv = W.COMPLEX
        with pytest.raises(ValueError):
            wv.tensor[0, 0, 0] = 5.0

    def test_vector_counts(self):
        assert W.COMPLEX.num_entity_vectors == 2
        assert W.COMPLEX.num_relation_vectors == 2
        assert W.QUATERNION.num_entity_vectors == 4
        assert W.DISTMULT_N1.num_entity_vectors == 1

    def test_wrong_size_raises(self):
        with pytest.raises(ConfigError):
            WeightVector.from_flat("x", (1, 2, 3))

    def test_non_3d_raises(self):
        with pytest.raises(ConfigError):
            WeightVector("x", np.ones((2, 2)))

    def test_scaled(self):
        doubled = W.CP.scaled(2.0)
        assert doubled.flatten() == (0, 0, 2, 0, 0, 0, 0, 0)

    def test_renamed(self):
        assert W.CP.renamed("other").name == "other"
        assert W.CP.renamed("other").flatten() == W.CP.flatten()

    def test_head_tail_swapped(self):
        swapped = W.CPH.head_tail_swapped()
        # (h1,t2,r1)+(h2,t1,r2)  ->  (h2,t1,r1)+(h1,t2,r2)
        assert swapped.flatten() == (0, 0, 0, 1, 1, 0, 0, 0)
        assert swapped.flatten() == W.CPH_EQUIV.flatten()

    def test_nonzero_terms(self):
        terms = W.CPH.nonzero_terms()
        assert terms == [(0, 1, 0, 1.0), (1, 0, 1, 1.0)]

    def test_equality_and_hash(self):
        a = WeightVector.from_flat("x", (1, 0, 0, 0, 0, 0, 0, 0))
        b = WeightVector.from_flat("x", (1, 0, 0, 0, 0, 0, 0, 0))
        assert a == b
        assert hash(a) == hash(b)
        assert a != a.renamed("y")


class TestTable1Presets:
    """The exact 8-tuples from Table 1 of the paper."""

    @pytest.mark.parametrize(
        "preset,expected",
        [
            (W.DISTMULT, (1, 0, 0, 0, 0, 0, 0, 0)),
            (W.COMPLEX, (1, 0, 0, 1, 0, -1, 1, 0)),
            (W.COMPLEX_EQUIV_1, (1, 0, 0, -1, 0, 1, 1, 0)),
            (W.COMPLEX_EQUIV_2, (0, 1, -1, 0, 1, 0, 0, 1)),
            (W.COMPLEX_EQUIV_3, (0, 1, 1, 0, -1, 0, 0, 1)),
            (W.CP, (0, 0, 1, 0, 0, 0, 0, 0)),
            (W.CPH, (0, 0, 1, 0, 0, 1, 0, 0)),
            (W.CPH_EQUIV, (0, 0, 0, 1, 1, 0, 0, 0)),
        ],
    )
    def test_table1_values(self, preset, expected):
        assert preset.flatten() == tuple(float(v) for v in expected)

    @pytest.mark.parametrize(
        "preset,expected",
        [
            (W.BAD_EXAMPLE_1, (0, 0, 20, 0, 0, 1, 0, 0)),
            (W.BAD_EXAMPLE_2, (0, 0, 1, 1, 1, 1, 0, 0)),
            (W.GOOD_EXAMPLE_1, (0, 0, 20, 1, 1, 20, 0, 0)),
            (W.GOOD_EXAMPLE_2, (1, 1, -1, 1, 1, -1, 1, 1)),
            (W.UNIFORM, (1, 1, 1, 1, 1, 1, 1, 1)),
        ],
    )
    def test_table2_and_3_values(self, preset, expected):
        assert preset.flatten() == tuple(float(v) for v in expected)

    def test_quaternion_matches_algebra_tensor(self):
        from repro.core.algebra.quaternion import quaternion_weight_tensor

        assert np.array_equal(W.QUATERNION.tensor, quaternion_weight_tensor())


class TestRegistry:
    def test_all_presets_resolvable(self):
        for key in W.PRESETS:
            assert get_preset(key).name

    def test_case_insensitive(self):
        assert get_preset("ComplEx") == W.COMPLEX

    def test_unknown_raises(self):
        with pytest.raises(ConfigError, match="unknown weight preset"):
            get_preset("transformer")

    def test_equivalent_families(self):
        assert len(W.complex_equivalents()) == 4
        assert len(W.cph_equivalents()) == 2
