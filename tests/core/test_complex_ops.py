"""Unit + property tests for :mod:`repro.core.algebra.complex_ops`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algebra.complex_ops import (
    complex_score,
    complex_score_expanded,
    complex_trilinear,
    pack_complex,
    real_trilinear,
    unpack_complex,
)
from repro.errors import ModelError

vectors = st.lists(st.floats(-5, 5, allow_nan=False), min_size=3, max_size=3)


def _random_complex(rng, shape):
    return rng.normal(size=shape) + 1j * rng.normal(size=shape)


class TestRealTrilinear:
    def test_matches_formula(self):
        a, b, c = np.array([1.0, 2.0]), np.array([3.0, 4.0]), np.array([5.0, 6.0])
        assert real_trilinear(a, b, c) == pytest.approx(1 * 3 * 5 + 2 * 4 * 6)

    def test_fully_symmetric_in_arguments(self, rng):
        a, b, c = rng.normal(size=(3, 8))
        assert real_trilinear(a, b, c) == pytest.approx(real_trilinear(c, a, b))
        assert real_trilinear(a, b, c) == pytest.approx(real_trilinear(b, a, c))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ModelError):
            real_trilinear(np.ones(2), np.ones(3), np.ones(3))

    def test_batched(self, rng):
        a, b, c = rng.normal(size=(3, 4, 8))
        out = real_trilinear(a, b, c)
        assert out.shape == (4,)


class TestComplexTrilinear:
    def test_conjugates_tail(self):
        h = np.array([1.0 + 1.0j])
        t = np.array([0.0 + 1.0j])
        r = np.array([1.0 + 0.0j])
        # h * conj(t) * r = (1+i)(-i)(1) = 1 - i
        assert complex_trilinear(h, t, r) == pytest.approx(1.0 - 1.0j)

    def test_score_is_real_part(self, rng):
        h, t, r = (_random_complex(rng, 6) for _ in range(3))
        assert complex_score(h, t, r) == pytest.approx(np.real(complex_trilinear(h, t, r)))

    def test_antisymmetry_possible(self, rng):
        """Swapping h and t changes the score for generic embeddings —
        the property that lets ComplEx model asymmetric data (§2.2.3)."""
        h, t, r = (_random_complex(rng, 6) for _ in range(3))
        assert complex_score(h, t, r) != pytest.approx(complex_score(t, h, r))

    def test_symmetric_when_relation_real(self, rng):
        """With a purely real r, the score is symmetric — the DistMult
        special case inside ComplEx."""
        h, t = (_random_complex(rng, 6) for _ in range(2))
        r = rng.normal(size=6).astype(complex)
        assert complex_score(h, t, r) == pytest.approx(complex_score(t, h, r))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ModelError):
            complex_trilinear(np.ones(2, dtype=complex), np.ones(3, dtype=complex),
                              np.ones(3, dtype=complex))


class TestEq9Expansion:
    """Paper Eq. 9/10: the four-term real expansion equals the complex score."""

    def test_expansion_identity_fixed(self, rng):
        h, t, r = (_random_complex(rng, 16) for _ in range(3))
        assert complex_score_expanded(h, t, r) == pytest.approx(complex_score(h, t, r))

    def test_expansion_identity_batched(self, rng):
        h, t, r = (_random_complex(rng, (5, 7)) for _ in range(3))
        assert np.allclose(complex_score_expanded(h, t, r), complex_score(h, t, r))

    @settings(max_examples=50)
    @given(vectors, vectors, vectors, vectors, vectors, vectors)
    def test_property_expansion_identity(self, hr, hi, tr, ti, rr, ri):
        h = pack_complex(hr, hi)
        t = pack_complex(tr, ti)
        r = pack_complex(rr, ri)
        assert complex_score_expanded(h, t, r) == pytest.approx(
            complex_score(h, t, r), abs=1e-9
        )


class TestPackUnpack:
    def test_round_trip(self, rng):
        re, im = rng.normal(size=(2, 4))
        z = pack_complex(re, im)
        re2, im2 = unpack_complex(z)
        assert np.array_equal(re, re2)
        assert np.array_equal(im, im2)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ModelError):
            pack_complex(np.ones(2), np.ones(3))
