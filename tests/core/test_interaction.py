"""Unit tests for :class:`repro.core.interaction.MultiEmbeddingModel`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import weights as W
from repro.core.interaction import MultiEmbeddingModel
from repro.core.models import make_model
from repro.errors import ConfigError, ModelError
from repro.nn.optimizers import Adam

NE, NR, DIM = 15, 3, 6


@pytest.fixture
def model(rng):
    return make_model(W.COMPLEX, NE, NR, rng, dim=DIM, initializer="normal")


class TestConstruction:
    def test_table_shapes(self, model):
        assert model.entity_embeddings.shape == (NE, 2, DIM)
        assert model.relation_embeddings.shape == (NR, 2, DIM)

    def test_quaternion_table_shapes(self, rng):
        quat = make_model(W.QUATERNION, NE, NR, rng, dim=DIM)
        assert quat.entity_embeddings.shape == (NE, 4, DIM)

    def test_parameter_count(self, model):
        assert model.parameter_count() == NE * 2 * DIM + NR * 2 * DIM

    def test_name_comes_from_weights(self, model):
        assert model.name == "ComplEx"

    def test_bad_sizes_raise(self, rng):
        with pytest.raises(ConfigError):
            MultiEmbeddingModel(0, 1, 4, W.COMPLEX, rng)
        with pytest.raises(ConfigError):
            MultiEmbeddingModel(5, 1, 0, W.COMPLEX, rng)

    def test_unit_norm_initialization(self, rng):
        m = make_model(W.COMPLEX, NE, NR, rng, dim=DIM, initializer="unit_normalized")
        norms = np.linalg.norm(m.entity_embeddings, axis=-1)
        assert np.allclose(norms, 1.0)


class TestScoring:
    def test_score_shape(self, model, rng):
        heads = rng.integers(0, NE, 7)
        tails = rng.integers(0, NE, 7)
        rels = rng.integers(0, NR, 7)
        assert model.score_triples(heads, tails, rels).shape == (7,)

    def test_lattice_definition(self, model, rng):
        """Score must equal the brute-force Eq. 8 double sum."""
        heads = rng.integers(0, NE, 5)
        tails = rng.integers(0, NE, 5)
        rels = rng.integers(0, NR, 5)
        scores = model.score_triples(heads, tails, rels)
        for b in range(5):
            h = model.entity_embeddings[heads[b]]
            t = model.entity_embeddings[tails[b]]
            r = model.relation_embeddings[rels[b]]
            brute = sum(
                model.omega[i, j, k] * float(np.sum(h[i] * t[j] * r[k]))
                for i in range(2)
                for j in range(2)
                for k in range(2)
            )
            assert scores[b] == pytest.approx(brute)

    def test_score_all_tails_consistent_with_triples(self, model, rng):
        heads = rng.integers(0, NE, 4)
        rels = rng.integers(0, NR, 4)
        matrix = model.score_all_tails(heads, rels)
        assert matrix.shape == (4, NE)
        for candidate in range(NE):
            expected = model.score_triples(heads, np.full(4, candidate), rels)
            assert np.allclose(matrix[:, candidate], expected)

    def test_score_all_heads_consistent_with_triples(self, model, rng):
        tails = rng.integers(0, NE, 4)
        rels = rng.integers(0, NR, 4)
        matrix = model.score_all_heads(tails, rels)
        for candidate in range(NE):
            expected = model.score_triples(np.full(4, candidate), tails, rels)
            assert np.allclose(matrix[:, candidate], expected)

    def test_mismatched_batch_raises(self, model):
        with pytest.raises(ModelError):
            model.score_triples(np.zeros(2, int), np.zeros(3, int), np.zeros(3, int))


class TestTraining:
    def test_train_step_reduces_loss_on_fixed_batch(self, model):
        positives = np.array([[0, 1, 0], [2, 3, 1], [4, 5, 2]])
        negatives = np.array([[0, 9, 0], [2, 10, 1], [11, 5, 2]])
        optimizer = Adam(learning_rate=0.05)
        first = model.train_step(positives, negatives, optimizer)
        for _ in range(30):
            last = model.train_step(positives, negatives, optimizer)
        assert last < first

    def test_unit_norm_constraint_enforced_after_step(self, rng):
        m = make_model(W.COMPLEX, NE, NR, rng, dim=DIM)
        positives = np.array([[0, 1, 0]])
        negatives = np.array([[0, 2, 0]])
        m.train_step(positives, negatives, Adam(learning_rate=0.5))
        touched = np.linalg.norm(m.entity_embeddings[[0, 1, 2]], axis=-1)
        assert np.allclose(touched, 1.0)

    def test_constraint_can_be_disabled(self, rng):
        m = make_model(W.COMPLEX, NE, NR, rng, dim=DIM, unit_norm_entities=False)
        positives = np.array([[0, 1, 0]])
        negatives = np.array([[0, 2, 0]])
        m.train_step(positives, negatives, Adam(learning_rate=0.5))
        touched = np.linalg.norm(m.entity_embeddings[[0, 1]], axis=-1)
        assert not np.allclose(touched, 1.0)

    def test_untouched_rows_not_updated(self, model):
        before = model.entity_embeddings[7].copy()
        model.train_step(
            np.array([[0, 1, 0]]), np.array([[0, 2, 0]]), Adam(learning_rate=0.1)
        )
        assert np.array_equal(model.entity_embeddings[7], before)

    def test_regularization_increases_reported_loss(self, rng):
        plain = make_model(W.COMPLEX, NE, NR, rng, dim=DIM, initializer="normal")
        reg = make_model(W.COMPLEX, NE, NR, np.random.default_rng(12345), dim=DIM,
                         regularization=1.0, initializer="normal")
        reg.entity_embeddings = plain.entity_embeddings.copy()
        reg.relation_embeddings = plain.relation_embeddings.copy()
        positives = np.array([[0, 1, 0]])
        negatives = np.array([[0, 2, 0]])
        loss_plain = plain.train_step(positives, negatives, Adam(1e-9))
        loss_reg = reg.train_step(positives, negatives, Adam(1e-9))
        assert loss_reg > loss_plain


class TestFeatureExport:
    def test_entity_features_concatenated(self, model):
        features = model.entity_features()
        assert features.shape == (NE, 2 * DIM)
        assert np.array_equal(features[0, :DIM], model.entity_embeddings[0, 0])
        assert np.array_equal(features[0, DIM:], model.entity_embeddings[0, 1])

    def test_relation_features(self, model):
        assert model.relation_features().shape == (NR, 2 * DIM)

    def test_features_are_copies(self, model):
        features = model.entity_features()
        features[:] = 0.0
        assert not np.allclose(model.entity_embeddings, 0.0)
