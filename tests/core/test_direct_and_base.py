"""Error-path tests for the direct scorers and the KGEModel base class."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import weights as W
from repro.core.base import KGEModel
from repro.core.direct import (
    complex_score_direct,
    cph_score_direct,
    quaternion_score_direct,
)
from repro.core.models import make_model
from repro.errors import ModelError

NE, NR, DIM = 8, 2, 4


@pytest.fixture
def one_embedding_model(rng):
    return make_model(W.DISTMULT_N1, NE, NR, rng, dim=DIM)


class TestDirectScorerErrors:
    def test_complex_requires_two_vectors(self, one_embedding_model):
        with pytest.raises(ModelError, match="two embedding vectors"):
            complex_score_direct(
                one_embedding_model, np.array([0]), np.array([1]), np.array([0])
            )

    def test_cph_requires_two_relation_vectors(self, one_embedding_model):
        with pytest.raises(ModelError, match="two embedding vectors"):
            cph_score_direct(
                one_embedding_model, np.array([0]), np.array([1]), np.array([0])
            )

    def test_quaternion_requires_four_vectors(self, rng):
        two_vec = make_model(W.COMPLEX, NE, NR, rng, dim=DIM)
        with pytest.raises(ModelError, match="four embedding vectors"):
            quaternion_score_direct(
                two_vec, np.array([0]), np.array([1]), np.array([0])
            )


class TestKGEModelBase:
    def test_repr_includes_counts(self, rng):
        model = make_model(W.COMPLEX, NE, NR, rng, dim=DIM)
        text = repr(model)
        assert "entities=8" in text
        assert "parameters=" in text

    def test_default_parameter_count_zero(self):
        class Minimal(KGEModel):
            num_entities = 1
            num_relations = 1

            def score_triples(self, heads, tails, relations):
                return np.zeros(len(heads))

            def score_all_tails(self, heads, relations):
                return np.zeros((len(heads), 1))

            def score_all_heads(self, tails, relations):
                return np.zeros((len(tails), 1))

            def train_step(self, positives, negatives, optimizer):
                return 0.0

        assert Minimal().parameter_count() == 0
