"""Error-path tests for the direct scorers and the KGEModel base class."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import weights as W
from repro.core.base import KGEModel
from repro.core.direct import (
    complex_score_direct,
    cph_score_direct,
    quaternion_score_direct,
)
from repro.core.models import make_model
from repro.errors import ModelError

NE, NR, DIM = 8, 2, 4


@pytest.fixture
def one_embedding_model(rng):
    return make_model(W.DISTMULT_N1, NE, NR, rng, dim=DIM)


class TestDirectScorerErrors:
    def test_complex_requires_two_vectors(self, one_embedding_model):
        with pytest.raises(ModelError, match="two embedding vectors"):
            complex_score_direct(
                one_embedding_model, np.array([0]), np.array([1]), np.array([0])
            )

    def test_cph_requires_two_relation_vectors(self, one_embedding_model):
        with pytest.raises(ModelError, match="two embedding vectors"):
            cph_score_direct(
                one_embedding_model, np.array([0]), np.array([1]), np.array([0])
            )

    def test_quaternion_requires_four_vectors(self, rng):
        two_vec = make_model(W.COMPLEX, NE, NR, rng, dim=DIM)
        with pytest.raises(ModelError, match="four embedding vectors"):
            quaternion_score_direct(
                two_vec, np.array([0]), np.array([1]), np.array([0])
            )


class TestKGEModelBase:
    def test_repr_includes_counts(self, rng):
        model = make_model(W.COMPLEX, NE, NR, rng, dim=DIM)
        text = repr(model)
        assert "entities=8" in text
        assert "parameters=" in text

    def test_default_parameter_count_zero(self):
        class Minimal(KGEModel):
            num_entities = 1
            num_relations = 1

            def score_triples(self, heads, tails, relations):
                return np.zeros(len(heads))

            def score_all_tails(self, heads, relations):
                return np.zeros((len(heads), 1))

            def score_all_heads(self, tails, relations):
                return np.zeros((len(tails), 1))

            def train_step(self, positives, negatives, optimizer):
                return 0.0

        assert Minimal().parameter_count() == 0


class TestDefaultCandidateFallback:
    """The flattened-grid default must match per-column scoring, blocked or not."""

    @pytest.fixture
    def er_mlp_style_model(self, rng):
        # A model WITHOUT a score_candidates override exercises the base
        # fallback; build one by deleting the subclass fast path.
        model = make_model(W.CPH, 40, 5, rng, dim=4)

        class BaseOnly(KGEModel):
            name = "base-only"
            num_entities = model.num_entities
            num_relations = model.num_relations

            def score_triples(self, heads, tails, relations):
                return model.score_triples(heads, tails, relations)

            def score_all_tails(self, heads, relations):
                return model.score_all_tails(heads, relations)

            def score_all_heads(self, tails, relations):
                return model.score_all_heads(tails, relations)

            def train_step(self, positives, negatives, optimizer):
                raise NotImplementedError

        return BaseOnly()

    @pytest.mark.parametrize("side", ["tail", "head"])
    def test_matches_per_column_loop(self, er_mlp_style_model, side, rng):
        model = er_mlp_style_model
        anchors = rng.integers(0, 40, 6)
        relations = rng.integers(0, 5, 6)
        candidates = rng.integers(0, 40, (6, 9))
        expected = np.empty((6, 9))
        for col in range(9):
            column = candidates[:, col]
            if side == "tail":
                expected[:, col] = model.score_triples(anchors, column, relations)
            else:
                expected[:, col] = model.score_triples(column, anchors, relations)
        got = model.score_candidates(anchors, relations, candidates, side=side)
        assert np.allclose(got, expected, atol=1e-12)

    def test_wide_grids_are_blocked(self, er_mlp_style_model, rng, monkeypatch):
        import repro.core.base as base

        monkeypatch.setattr(base, "CANDIDATE_BLOCK_TRIPLES", 8)  # force many blocks
        model = er_mlp_style_model
        anchors = rng.integers(0, 40, 5)
        relations = rng.integers(0, 5, 5)
        candidates = rng.integers(0, 40, (5, 13))
        blocked = model.score_candidates(anchors, relations, candidates)
        monkeypatch.setattr(base, "CANDIDATE_BLOCK_TRIPLES", 65536)
        assert np.allclose(
            blocked, model.score_candidates(anchors, relations, candidates), atol=1e-12
        )

    def test_empty_candidate_set(self, er_mlp_style_model):
        out = er_mlp_style_model.score_candidates(
            np.array([1, 2]), np.array([0, 1]), np.zeros((2, 0), dtype=np.int64)
        )
        assert out.shape == (2, 0)
