"""Unit + property tests for the quaternion algebra substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algebra.quaternion import (
    conjugate,
    hamilton_product,
    norm,
    normalize,
    quaternion_score,
    quaternion_score_expanded,
    quaternion_trilinear,
    quaternion_weight_tensor,
    real_part,
)
from repro.errors import ModelError

quat_components = st.lists(st.floats(-3, 3, allow_nan=False), min_size=4, max_size=4)


def q(a, b, c, d):
    return np.array([[a], [b], [c], [d]], dtype=np.float64)


def random_quat(rng, trailing=()):
    return rng.normal(size=(4,) + tuple(trailing))


class TestHamiltonProduct:
    def test_fundamental_units(self):
        i, j, k = q(0, 1, 0, 0), q(0, 0, 1, 0), q(0, 0, 0, 1)
        minus_one = q(-1, 0, 0, 0)
        assert np.allclose(hamilton_product(i, i), minus_one)
        assert np.allclose(hamilton_product(j, j), minus_one)
        assert np.allclose(hamilton_product(k, k), minus_one)
        assert np.allclose(hamilton_product(i, j), k)
        assert np.allclose(hamilton_product(j, k), i)
        assert np.allclose(hamilton_product(k, i), j)

    def test_noncommutative(self):
        i, j = q(0, 1, 0, 0), q(0, 0, 1, 0)
        assert np.allclose(hamilton_product(i, j), -hamilton_product(j, i))

    def test_identity(self, rng):
        one = q(1, 0, 0, 0)
        p = random_quat(rng, (1,))
        assert np.allclose(hamilton_product(one, p), p)
        assert np.allclose(hamilton_product(p, one), p)

    def test_associativity(self, rng):
        p, r, s = (random_quat(rng, (3,)) for _ in range(3))
        left = hamilton_product(hamilton_product(p, r), s)
        right = hamilton_product(p, hamilton_product(r, s))
        assert np.allclose(left, right)

    def test_norm_multiplicative(self, rng):
        p, r = (random_quat(rng, (5,)) for _ in range(2))
        assert np.allclose(norm(hamilton_product(p, r)), norm(p) * norm(r))

    def test_bad_leading_axis_raises(self):
        with pytest.raises(ModelError):
            hamilton_product(np.ones((3, 1)), np.ones((4, 1)))

    @settings(max_examples=50)
    @given(quat_components, quat_components, quat_components)
    def test_property_associativity(self, a, b, c):
        p = np.asarray(a).reshape(4, 1)
        r = np.asarray(b).reshape(4, 1)
        s = np.asarray(c).reshape(4, 1)
        left = hamilton_product(hamilton_product(p, r), s)
        right = hamilton_product(p, hamilton_product(r, s))
        assert np.allclose(left, right, atol=1e-9)


class TestConjugateAndNorm:
    def test_conjugate_negates_imaginary(self):
        p = q(1, 2, 3, 4)
        assert conjugate(p).ravel().tolist() == [1, -2, -3, -4]

    def test_conjugate_involution(self, rng):
        p = random_quat(rng, (4,))
        assert np.allclose(conjugate(conjugate(p)), p)

    def test_conjugate_antihomomorphism(self, rng):
        # conj(pq) = conj(q) conj(p)
        p, r = (random_quat(rng, (2,)) for _ in range(2))
        assert np.allclose(
            conjugate(hamilton_product(p, r)),
            hamilton_product(conjugate(r), conjugate(p)),
        )

    def test_q_times_conjugate_is_norm_squared(self, rng):
        p = random_quat(rng, (3,))
        product = hamilton_product(p, conjugate(p))
        assert np.allclose(real_part(product), norm(p) ** 2)
        assert np.allclose(product[1:], 0.0)

    def test_normalize(self, rng):
        p = random_quat(rng, (6,)) * 3.0
        assert np.allclose(norm(normalize(p)), 1.0)

    def test_normalize_zero_left_alone(self):
        z = np.zeros((4, 2))
        assert np.allclose(normalize(z), 0.0)


class TestEq14Expansion:
    """Paper Eq. 14: the 16-term expansion equals Re(<h, conj(t), r>)."""

    def test_identity_fixed(self, rng):
        h, t, r = (random_quat(rng, (9,)) for _ in range(3))
        assert np.allclose(
            quaternion_score(h[:, None], t[:, None], r[:, None]),
            quaternion_score_expanded(h[:, None], t[:, None], r[:, None]),
        )

    def test_identity_batched(self, rng):
        h, t, r = (random_quat(rng, (5, 7)) for _ in range(3))
        assert np.allclose(quaternion_score(h, t, r), quaternion_score_expanded(h, t, r))

    @settings(max_examples=50)
    @given(quat_components, quat_components, quat_components)
    def test_property_identity(self, a, b, c):
        h = np.asarray(a).reshape(4, 1, 1)
        t = np.asarray(b).reshape(4, 1, 1)
        r = np.asarray(c).reshape(4, 1, 1)
        assert quaternion_score(h, t, r) == pytest.approx(
            quaternion_score_expanded(h, t, r), abs=1e-9
        )

    def test_reduces_to_complex_when_jk_zero(self, rng):
        """Setting the j,k components to zero recovers the ComplEx score."""
        from repro.core.algebra.complex_ops import complex_score, pack_complex

        a, b = rng.normal(size=(2, 8)), rng.normal(size=(2, 8))
        c = rng.normal(size=(2, 8))
        h = np.stack([a[0], a[1], np.zeros(8), np.zeros(8)])
        t = np.stack([b[0], b[1], np.zeros(8), np.zeros(8)])
        r = np.stack([c[0], c[1], np.zeros(8), np.zeros(8)])
        expected = complex_score(
            pack_complex(a[0], a[1]), pack_complex(b[0], b[1]), pack_complex(c[0], c[1])
        )
        assert quaternion_score(h, t, r) == pytest.approx(expected)

    def test_asymmetric_for_generic_inputs(self, rng):
        h, t, r = (random_quat(rng, (8,)) for _ in range(3))
        assert quaternion_score(h, t, r) != pytest.approx(quaternion_score(t, h, r))


class TestWeightTensor:
    def test_sixteen_nonzero_terms(self):
        omega = quaternion_weight_tensor()
        assert omega.shape == (4, 4, 4)
        assert int(np.count_nonzero(omega)) == 16
        assert set(np.unique(omega)) == {-1.0, 0.0, 1.0}

    def test_tensor_realises_eq14(self, rng):
        omega = quaternion_weight_tensor()
        h, t, r = (random_quat(rng, (6,)) for _ in range(3))
        # lattice sum with the tensor == the expanded score
        lattice = np.einsum("ijk,id,jd,kd->", omega, h, t, r)
        assert lattice == pytest.approx(float(quaternion_score(h, t, r)))

    def test_r1_block_is_diagonal(self):
        # Eq. 14 row 1: relation slot 1 pairs h and t components diagonally.
        omega = quaternion_weight_tensor()
        assert np.array_equal(omega[:, :, 0], np.eye(4))
