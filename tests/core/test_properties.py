"""Tests for the §6.1.2 weight-vector properties.

The paper's presets must classify exactly as the paper's empirical
results suggest: ComplEx/CPh/good examples 'good', DistMult(n=1)/bad
example 2/uniform 'symmetric', CP/bad example 1 'poor'.
"""

from __future__ import annotations

import pytest

from repro.core import weights as W
from repro.core.properties import (
    analyze_weight_vector,
    dead_slots,
    is_complete,
    is_distinguishable,
    is_stable,
)


class TestCompleteness:
    @pytest.mark.parametrize(
        "preset", [W.COMPLEX, W.CPH, W.CPH_EQUIV, W.GOOD_EXAMPLE_1, W.GOOD_EXAMPLE_2,
                   W.QUATERNION, W.UNIFORM, W.BAD_EXAMPLE_1, W.BAD_EXAMPLE_2]
    )
    def test_complete_presets(self, preset):
        assert is_complete(preset)

    @pytest.mark.parametrize("preset", [W.CP, W.DISTMULT])
    def test_incomplete_presets(self, preset):
        assert not is_complete(preset)

    def test_cp_dead_slots(self):
        # CP uses only h1, t2, r1.
        assert set(dead_slots(W.CP)) == {"head[2]", "tail[1]", "relation[2]"}

    def test_distmult_n1_complete(self):
        assert is_complete(W.DISTMULT_N1)


class TestStability:
    @pytest.mark.parametrize(
        "preset", [W.COMPLEX, W.COMPLEX_EQUIV_1, W.CPH, W.GOOD_EXAMPLE_1,
                   W.GOOD_EXAMPLE_2, W.QUATERNION, W.UNIFORM]
    )
    def test_stable_presets(self, preset):
        assert is_stable(preset)

    @pytest.mark.parametrize("preset", [W.CP, W.DISTMULT, W.BAD_EXAMPLE_1])
    def test_unstable_presets(self, preset):
        assert not is_stable(preset)

    def test_bad_example_1_unbalanced_masses(self):
        # (0,0,20,0,0,1,0,0): head slot 1 carries 20, slot 2 carries 1.
        report = analyze_weight_vector(W.BAD_EXAMPLE_1)
        assert report.slot_masses["head"] == (20.0, 1.0)


class TestDistinguishability:
    @pytest.mark.parametrize(
        "preset", [W.COMPLEX, W.CP, W.CPH, W.GOOD_EXAMPLE_1, W.GOOD_EXAMPLE_2,
                   W.QUATERNION, W.BAD_EXAMPLE_1]
    )
    def test_asymmetric_presets(self, preset):
        assert is_distinguishable(preset)

    @pytest.mark.parametrize("preset", [W.DISTMULT, W.UNIFORM, W.BAD_EXAMPLE_2,
                                        W.DISTMULT_N1])
    def test_symmetric_presets(self, preset):
        assert not is_distinguishable(preset)


class TestPredictedQuality:
    """The headline classification matching Tables 2-3 outcomes."""

    @pytest.mark.parametrize(
        "preset", [W.COMPLEX, W.COMPLEX_EQUIV_1, W.COMPLEX_EQUIV_2, W.COMPLEX_EQUIV_3,
                   W.CPH, W.CPH_EQUIV, W.GOOD_EXAMPLE_1, W.GOOD_EXAMPLE_2, W.QUATERNION]
    )
    def test_good(self, preset):
        report = analyze_weight_vector(preset)
        assert report.satisfies_all
        assert report.predicted_quality() == "good"

    @pytest.mark.parametrize("preset", [W.UNIFORM, W.BAD_EXAMPLE_2, W.DISTMULT_N1])
    def test_symmetric(self, preset):
        assert analyze_weight_vector(preset).predicted_quality() == "symmetric"

    @pytest.mark.parametrize("preset", [W.CP, W.BAD_EXAMPLE_1])
    def test_poor(self, preset):
        assert analyze_weight_vector(preset).predicted_quality() == "poor"

    def test_report_carries_name(self):
        assert analyze_weight_vector(W.COMPLEX).name == "ComplEx"
