"""Unit tests for model checkpointing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import weights as W
from repro.core.learned import LearnedWeightModel
from repro.core.models import make_learned_weight_model, make_model, make_quaternion
from repro.core.serialization import load_model, save_model
from repro.errors import ModelError
from repro.nn.optimizers import Adam
from repro.nn.regularizers import DirichletSparsityRegularizer

NE, NR, DIM = 12, 3, 4


def _assert_scores_equal(a, b):
    rng = np.random.default_rng(0)
    heads = rng.integers(0, NE, 10)
    tails = rng.integers(0, NE, 10)
    rels = rng.integers(0, NR, 10)
    assert np.allclose(a.score_triples(heads, tails, rels),
                       b.score_triples(heads, tails, rels))


class TestRoundTrip:
    def test_fixed_weight_model(self, tmp_path, rng):
        model = make_model(W.COMPLEX, NE, NR, rng, dim=DIM, regularization=0.01)
        save_model(model, tmp_path / "ckpt")
        restored = load_model(tmp_path / "ckpt")
        _assert_scores_equal(model, restored)
        assert restored.name == model.name
        assert restored.weights.name == "ComplEx"
        assert restored.regularizer.strength == pytest.approx(0.01)

    def test_quaternion_model(self, tmp_path, rng):
        model = make_quaternion(NE, NR, 16, rng)
        save_model(model, tmp_path / "q")
        _assert_scores_equal(model, load_model(tmp_path / "q"))

    def test_learned_model_with_sparsity(self, tmp_path, rng):
        model = make_learned_weight_model(NE, NR, total_dim=8, rng=rng,
                                          transform="sigmoid", sparse=True)
        # perturb rho so we verify the cached omega is rebuilt on load
        model.rho += 0.3
        model._omega_cache = model.transform.forward(model.rho)
        save_model(model, tmp_path / "learned")
        restored = load_model(tmp_path / "learned")
        assert isinstance(restored, LearnedWeightModel)
        assert np.allclose(restored.rho, model.rho)
        assert np.allclose(restored.omega, model.omega)
        assert restored.sparsity is not None
        assert restored.sparsity.alpha == pytest.approx(1 / 16)
        _assert_scores_equal(model, restored)

    def test_trained_model_round_trip(self, tmp_path, rng):
        model = make_model(W.CPH, NE, NR, rng, dim=DIM)
        model.train_step(np.array([[0, 1, 0]]), np.array([[0, 2, 0]]),
                         Adam(learning_rate=0.1))
        save_model(model, tmp_path / "trained")
        _assert_scores_equal(model, load_model(tmp_path / "trained"))

    def test_restored_model_is_trainable(self, tmp_path, rng):
        model = make_model(W.COMPLEX, NE, NR, rng, dim=DIM)
        save_model(model, tmp_path / "m")
        restored = load_model(tmp_path / "m")
        loss = restored.train_step(np.array([[0, 1, 0]]), np.array([[0, 2, 0]]),
                                   Adam(learning_rate=0.1))
        assert np.isfinite(loss)


class TestErrors:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(ModelError, match="not a model checkpoint"):
            load_model(tmp_path / "missing")

    def test_bad_version_raises(self, tmp_path, rng):
        model = make_model(W.CP, NE, NR, rng, dim=DIM)
        save_model(model, tmp_path / "v")
        meta = (tmp_path / "v" / "meta.json")
        meta.write_text(meta.read_text().replace('"format_version": 1',
                                                 '"format_version": 99'))
        with pytest.raises(ModelError, match="version"):
            load_model(tmp_path / "v")

    def test_unknown_class_raises(self, tmp_path, rng):
        model = make_model(W.CP, NE, NR, rng, dim=DIM)
        save_model(model, tmp_path / "c")
        meta = (tmp_path / "c" / "meta.json")
        meta.write_text(meta.read_text().replace("MultiEmbeddingModel", "Transformer"))
        with pytest.raises(ModelError, match="unknown model class"):
            load_model(tmp_path / "c")
