"""Compiled-kernel vs dense-oracle equivalence (scores and gradients).

The acceptance bar for the kernel compiler: for every model class the
compiled engine must match the dense-einsum reference to 1e-10 — scores,
all three analytic gradient tensors, and the parameters produced by full
fused train steps (which additionally exercise scatter accumulation and
the fused optimizer paths).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import (
    DENSE_DENSITY_THRESHOLD,
    DenseEinsumKernel,
    SparseTermKernel,
    cached_einsum,
    compile_kernel,
    gather_transposed,
)
from repro.core.learned import LearnedWeightModel
from repro.core.models import make_learned_weight_model, make_model
from repro.core.weights import PRESETS, get_preset
from repro.errors import ModelError
from repro.nn.optimizers import make_optimizer

ATOL = 1e-10

#: Every fixed-ω preset in the registry — Table 1 derivations, Table 2
#: hand-crafted variants, the uniform baseline and the quaternion tensor.
ALL_PRESETS = sorted(PRESETS)

NE, NR, BATCH = 130, 7, 48


@pytest.fixture
def batch(rng):
    heads = rng.integers(0, NE, BATCH)
    tails = rng.integers(0, NE, BATCH)
    relations = rng.integers(0, NR, BATCH)
    return heads, tails, relations


def model_pair(name: str, **kwargs):
    """The same model twice: compiled engine and dense reference."""
    if name == "learned":
        return (
            make_learned_weight_model(NE, NR, 16, np.random.default_rng(3), **kwargs),
            make_learned_weight_model(
                NE, NR, 16, np.random.default_rng(3), use_compiled_kernel=False, **kwargs
            ),
        )
    dim = 16 // get_preset(name).num_entity_vectors
    return (
        make_model(name, NE, NR, np.random.default_rng(3), dim=dim, **kwargs),
        make_model(
            name, NE, NR, np.random.default_rng(3), dim=dim, use_compiled_kernel=False, **kwargs
        ),
    )


# ---------------------------------------------------------------- compilation
class TestCompilation:
    def test_sparse_below_threshold_dense_above(self):
        assert compile_kernel(get_preset("quaternion").tensor).mode == "sparse"
        assert compile_kernel(get_preset("cph").tensor).mode == "sparse"
        assert compile_kernel(get_preset("uniform").tensor).mode == "dense"
        assert compile_kernel(np.ones((2, 2, 2))).mode == "dense"

    def test_threshold_boundary(self):
        omega = np.zeros((2, 2, 2))
        omega[0, 0, 0] = 1.0
        assert isinstance(compile_kernel(omega), SparseTermKernel)
        assert isinstance(
            compile_kernel(omega, density_threshold=0.0), DenseEinsumKernel
        )

    def test_density_metadata(self):
        kernel = compile_kernel(get_preset("quaternion").tensor)
        assert kernel.num_terms == 16
        assert kernel.density == pytest.approx(0.25)
        assert kernel.density < DENSE_DENSITY_THRESHOLD

    def test_bad_omega_rejected(self):
        with pytest.raises(ModelError):
            compile_kernel(np.ones((2, 2)))

    def test_term_program_covers_all_nonzeros(self):
        for name in ALL_PRESETS:
            omega = get_preset(name).tensor
            kernel = compile_kernel(omega, density_threshold=1.1)  # force sparse
            assert isinstance(kernel, SparseTermKernel)
            rebuilt = np.zeros_like(omega)
            for i, j, k, w in kernel.terms:
                rebuilt[i, j, k] = w
            assert np.array_equal(rebuilt, omega)


# --------------------------------------------------------- kernel-level math
@pytest.mark.parametrize("name", ALL_PRESETS)
class TestKernelAgainstEinsum:
    """Direct contraction-level checks for every preset ω."""

    @pytest.fixture
    def tensors(self, name, rng):
        omega = get_preset(name).tensor
        n_h, n_t, n_r = omega.shape
        b, dim = 17, 5
        h_t = rng.normal(size=(n_h, b, dim))
        t_t = rng.normal(size=(n_t, b, dim))
        r_t = rng.normal(size=(n_r, b, dim))
        return omega, h_t, t_t, r_t

    @pytest.fixture(params=["sparse", "dense"])
    def kernel(self, request, tensors):
        omega = tensors[0]
        threshold = 1.1 if request.param == "sparse" else 0.0
        return compile_kernel(omega, density_threshold=threshold)

    def test_combines(self, kernel, tensors):
        omega, h_t, t_t, r_t = tensors
        assert np.allclose(
            kernel.combine_hr(h_t, r_t),
            np.einsum("ijk,ibd,kbd->jbd", omega, h_t, r_t),
            atol=ATOL,
        )
        assert np.allclose(
            kernel.combine_tr(t_t, r_t),
            np.einsum("ijk,jbd,kbd->ibd", omega, t_t, r_t),
            atol=ATOL,
        )
        assert np.allclose(
            kernel.combine_ht(h_t, t_t),
            np.einsum("ijk,ibd,jbd->kbd", omega, h_t, t_t),
            atol=ATOL,
        )

    def test_scores(self, kernel, tensors):
        omega, h_t, t_t, r_t = tensors
        expected = np.einsum("ijk,ibd,jbd,kbd->b", omega, h_t, t_t, r_t)
        assert np.allclose(kernel.score_triples(h_t, t_t, r_t), expected, atol=ATOL)

    def test_gradients(self, kernel, tensors):
        omega, h_t, t_t, r_t = tensors
        g = np.linspace(-1.0, 1.0, h_t.shape[1])
        grad_h, grad_t, grad_r = kernel.gradients(h_t, t_t, r_t, g)
        assert np.allclose(
            grad_h, g[None, :, None] * np.einsum("ijk,jbd,kbd->ibd", omega, t_t, r_t), atol=ATOL
        )
        assert np.allclose(
            grad_t, g[None, :, None] * np.einsum("ijk,ibd,kbd->jbd", omega, h_t, r_t), atol=ATOL
        )
        assert np.allclose(
            grad_r, g[None, :, None] * np.einsum("ijk,ibd,jbd->kbd", omega, h_t, t_t), atol=ATOL
        )

    def test_gradients_reuse_forward_combination(self, kernel, tensors):
        omega, h_t, t_t, r_t = tensors
        combined = np.empty_like(kernel.combine_hr(h_t, r_t))
        kernel.score_triples(h_t, t_t, r_t, combined_out=combined)
        g = np.linspace(0.5, 1.5, h_t.shape[1])
        _, grad_t, _ = kernel.gradients(h_t, t_t, r_t, g, forward_combined=combined)
        assert grad_t is combined  # scaled in place, no recontraction
        reference = g[None, :, None] * np.einsum("ijk,ibd,kbd->jbd", omega, h_t, r_t)
        assert np.allclose(grad_t, reference, atol=ATOL)

    def test_fold_relations(self, kernel, tensors, rng):
        omega = tensors[0]
        table = rng.normal(size=(6, omega.shape[2], 4))
        assert np.allclose(
            kernel.fold_relations(table),
            np.einsum("ijk,rkd->rijd", omega, table),
            atol=ATOL,
        )

    def test_omega_gradient(self, kernel, tensors, rng):
        omega, h_t, t_t, r_t = tensors
        g = rng.normal(size=h_t.shape[1])
        h, t, r = (x.transpose(1, 0, 2) for x in (h_t, t_t, r_t))
        assert np.allclose(
            kernel.omega_gradient(g, h, t, r),
            np.einsum("b,bid,bjd,bkd->ijk", g, h, t, r),
            atol=ATOL,
        )


# -------------------------------------------------------- model-level scores
MODEL_CLASSES = ["distmult", "distmult_n1", "complex", "cp", "cph", "quaternion", "uniform", "learned"]


@pytest.mark.parametrize("name", MODEL_CLASSES)
class TestModelEquivalence:
    def test_scoring_surface_matches_reference(self, name, batch, rng):
        kernel_model, dense_model = model_pair(name)
        heads, tails, relations = batch
        assert np.allclose(
            kernel_model.score_triples(heads, tails, relations),
            dense_model.score_triples(heads, tails, relations),
            atol=ATOL,
        )
        assert np.allclose(
            kernel_model.score_all_tails(heads, relations),
            dense_model.score_all_tails(heads, relations),
            atol=ATOL,
        )
        assert np.allclose(
            kernel_model.score_all_heads(tails, relations),
            dense_model.score_all_heads(tails, relations),
            atol=ATOL,
        )
        candidates = rng.integers(0, NE, (BATCH, 11))
        for side in ("tail", "head"):
            assert np.allclose(
                kernel_model.score_candidates(heads, relations, candidates, side=side),
                dense_model.score_candidates(heads, relations, candidates, side=side),
                atol=ATOL,
            )

    @pytest.mark.parametrize("optimizer_name", ["sgd", "adagrad", "adam"])
    def test_train_steps_match_reference(self, name, optimizer_name, rng):
        """Fused steps reproduce the dense-oracle parameters to 1e-10.

        Covers scores, all gradient tensors, scatter accumulation and the
        fused optimizer paths end to end, with regularisation on.
        """
        kernel_model, dense_model = model_pair(name, regularization=0.01)
        kernel_opt = make_optimizer(optimizer_name, 0.05)
        dense_opt = make_optimizer(optimizer_name, 0.05)
        for _ in range(3):
            positives = np.column_stack(
                [rng.integers(0, NE, 40), rng.integers(0, NE, 40), rng.integers(0, NR, 40)]
            )
            negatives = np.column_stack(
                [rng.integers(0, NE, 40), rng.integers(0, NE, 40), rng.integers(0, NR, 40)]
            )
            loss_kernel = kernel_model.train_step(positives, negatives, kernel_opt)
            loss_dense = dense_model.train_step(positives, negatives, dense_opt)
            assert loss_kernel == pytest.approx(loss_dense, abs=ATOL)
        assert np.allclose(
            kernel_model.entity_embeddings, dense_model.entity_embeddings, atol=ATOL
        )
        assert np.allclose(
            kernel_model.relation_embeddings, dense_model.relation_embeddings, atol=ATOL
        )
        if isinstance(kernel_model, LearnedWeightModel):
            assert np.allclose(kernel_model.rho, dense_model.rho, atol=ATOL)
            assert np.allclose(kernel_model.omega, dense_model.omega, atol=ATOL)

    def test_chunked_train_step_matches_reference(self, name, rng, monkeypatch):
        """Batches spanning several fused chunks (incl. a ragged tail)."""
        import repro.core.interaction as interaction

        monkeypatch.setattr(interaction, "_FUSED_CHUNK_ROWS", 16)
        kernel_model, dense_model = model_pair(name)
        kernel_opt = make_optimizer("adam", 0.05)
        dense_opt = make_optimizer("adam", 0.05)
        positives = np.column_stack(
            [rng.integers(0, NE, 37), rng.integers(0, NE, 37), rng.integers(0, NR, 37)]
        )
        negatives = np.column_stack(
            [rng.integers(0, NE, 37), rng.integers(0, NE, 37), rng.integers(0, NR, 37)]
        )
        loss_kernel = kernel_model.train_step(positives, negatives, kernel_opt)
        loss_dense = dense_model.train_step(positives, negatives, dense_opt)
        assert loss_kernel == pytest.approx(loss_dense, abs=ATOL)
        assert np.allclose(
            kernel_model.entity_embeddings, dense_model.entity_embeddings, atol=ATOL
        )

    def test_duplicate_heavy_batch_matches_reference(self, name, rng):
        """Scatter accumulation with every entity repeated many times."""
        kernel_model, dense_model = model_pair(name)
        kernel_opt = make_optimizer("adam", 0.05)
        dense_opt = make_optimizer("adam", 0.05)
        # Only 5 distinct entities across 60 occurrences.
        positives = np.column_stack(
            [rng.integers(0, 5, 30), rng.integers(0, 5, 30), rng.integers(0, NR, 30)]
        )
        negatives = np.column_stack(
            [rng.integers(0, 5, 30), rng.integers(0, 5, 30), rng.integers(0, NR, 30)]
        )
        kernel_model.train_step(positives, negatives, kernel_opt)
        dense_model.train_step(positives, negatives, dense_opt)
        assert np.allclose(
            kernel_model.entity_embeddings, dense_model.entity_embeddings, atol=ATOL
        )
        assert np.allclose(
            kernel_model.relation_embeddings, dense_model.relation_embeddings, atol=ATOL
        )


# ------------------------------------------------------------- recompilation
class TestKernelLifecycle:
    def test_fixed_weight_models_compile_once(self, batch):
        model, _ = model_pair("quaternion")
        kernel = model.kernel
        heads, tails, relations = batch
        optimizer = make_optimizer("adam", 0.01)
        model.train_step(
            np.column_stack(batch), np.column_stack((tails, heads, relations)), optimizer
        )
        assert model.kernel is kernel

    @pytest.mark.parametrize("transform", ["identity", "tanh", "softmax"])
    def test_learned_models_recompile_on_scoring_version_bump(self, transform, batch, rng):
        model = make_learned_weight_model(
            NE, NR, 16, np.random.default_rng(3), transform=transform
        )
        before = model.kernel
        assert before.mode == "dense"  # learned ω is fully dense
        positives = np.column_stack(batch)
        negatives = positives[:, [1, 0, 2]]
        model.train_step(positives, negatives, make_optimizer("adam", 0.05))
        after = model.kernel
        assert after is not before
        assert np.allclose(after.omega, model.omega, atol=ATOL)
        # scoring with the recompiled kernel matches a fresh dense model
        heads, tails, relations = batch
        reference = np.einsum(
            "ijk,bid,bjd,bkd->b",
            model.omega,
            model.entity_embeddings[heads],
            model.entity_embeddings[tails],
            model.relation_embeddings[relations],
        )
        assert np.allclose(model.score_triples(heads, tails, relations), reference, atol=ATOL)

    def test_refresh_omega_recompiles(self, rng):
        model = make_learned_weight_model(NE, NR, 16, np.random.default_rng(3), transform="tanh")
        before = model.kernel
        model.rho = model.rho * 1.3
        model.refresh_omega()
        assert model.kernel is not before
        assert np.allclose(model.kernel.omega, np.tanh(model.rho), atol=ATOL)


# ------------------------------------------------------------------- helpers
class TestHelpers:
    def test_gather_transposed_roundtrip(self, rng):
        table = rng.normal(size=(20, 3, 4))
        rows = rng.integers(0, 20, 15)
        gathered = gather_transposed(table, rows)
        assert gathered.shape == (3, 15, 4)
        assert np.array_equal(gathered.transpose(1, 0, 2), table[rows])

    def test_cached_einsum_matches_and_caches(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 5))
        assert np.allclose(cached_einsum("ij,jk->ik", a, b), a @ b, atol=ATOL)
        # same spec/shapes hit the path cache; different shapes recompute
        assert np.allclose(cached_einsum("ij,jk->ik", a, b), a @ b, atol=ATOL)

    def test_transposed_layout_validated(self):
        kernel = compile_kernel(get_preset("cph").tensor)
        with pytest.raises(ModelError):
            kernel.combine_hr(np.zeros((3, 5, 2)), np.zeros((2, 5, 2)))


class TestWorkspaceLifecycle:
    def test_empty_batch_raises_like_reference(self):
        from repro.errors import ConfigError

        kernel_model, dense_model = model_pair("cph")
        empty = np.zeros((0, 3), dtype=np.int64)
        optimizer = make_optimizer("adam", 0.01)
        with pytest.raises(ConfigError):
            kernel_model.train_step(empty, empty, optimizer)
        with pytest.raises(ConfigError):
            dense_model.train_step(empty, empty, optimizer)

    def test_release_training_buffers(self, rng):
        model, _ = model_pair("quaternion")
        positives = np.column_stack(
            [rng.integers(0, NE, 8), rng.integers(0, NE, 8), rng.integers(0, NR, 8)]
        )
        optimizer = make_optimizer("adam", 0.01)
        model.train_step(positives, positives[:, [1, 0, 2]], optimizer)
        assert model._workspaces
        model.release_training_buffers()
        assert not model._workspaces
        # training again just reallocates and still matches expectations
        loss = model.train_step(positives, positives[:, [1, 0, 2]], optimizer)
        assert np.isfinite(loss)
