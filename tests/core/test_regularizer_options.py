"""Tests for the model-level regularizer options (L2 vs N3) and the
paper's claim that standard regularisation does not rescue CP (§6.1.1).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import weights as W
from repro.core.models import make_cp, make_distmult, make_model
from repro.errors import ConfigError
from repro.eval.evaluator import LinkPredictionEvaluator
from repro.nn.optimizers import SGD
from repro.nn.regularizers import L2Regularizer, N3Regularizer
from repro.training.trainer import Trainer, TrainingConfig

NE, NR, DIM = 12, 3, 4


class TestRegularizerKinds:
    def test_default_is_l2(self, rng):
        model = make_model(W.COMPLEX, NE, NR, rng, dim=DIM, regularization=0.1)
        assert isinstance(model.regularizer, L2Regularizer)

    def test_n3_selected(self, rng):
        model = make_model(W.COMPLEX, NE, NR, rng, dim=DIM, regularization=0.1,
                           regularizer_kind="n3")
        assert isinstance(model.regularizer, N3Regularizer)

    def test_unknown_kind_raises(self, rng):
        with pytest.raises(ConfigError, match="regularizer_kind"):
            make_model(W.COMPLEX, NE, NR, rng, dim=DIM, regularizer_kind="dropout")

    def test_n3_training_step_finite(self, rng):
        model = make_model(W.COMPLEX, NE, NR, rng, dim=DIM, regularization=0.1,
                           regularizer_kind="n3")
        loss = model.train_step(np.array([[0, 1, 0]]), np.array([[0, 2, 0]]),
                                SGD(learning_rate=0.01))
        assert np.isfinite(loss)

    def test_n3_loss_higher_than_unregularized(self, rng):
        plain = make_model(W.COMPLEX, NE, NR, rng, dim=DIM, initializer="normal",
                           unit_norm_entities=False)
        reg = make_model(W.COMPLEX, NE, NR, np.random.default_rng(12345), dim=DIM,
                         regularization=1.0, regularizer_kind="n3",
                         initializer="normal", unit_norm_entities=False)
        reg.entity_embeddings = plain.entity_embeddings.copy()
        reg.relation_embeddings = plain.relation_embeddings.copy()
        p = np.array([[0, 1, 0]])
        n = np.array([[0, 2, 0]])
        assert reg.train_step(p, n, SGD(1e-12)) > plain.train_step(p, n, SGD(1e-12))


class TestL2DoesNotRescueCP:
    """§6.1.1: 'standard regularization techniques such as L2
    regularization did not appear to help' CP's generalisation."""

    @pytest.mark.parametrize("strength", [0.0, 3e-3, 3e-2])
    def test_cp_stays_poor_at_any_l2_strength(self, tiny_dataset, strength):
        config = TrainingConfig(epochs=120, batch_size=256, learning_rate=0.02,
                                validate_every=1000, patience=1000, seed=0)
        evaluator = LinkPredictionEvaluator(tiny_dataset)

        cp = make_cp(tiny_dataset.num_entities, tiny_dataset.num_relations,
                     16, np.random.default_rng(0), regularization=strength)
        Trainer(tiny_dataset, config).train(cp)
        cp_mrr = evaluator.evaluate(cp, "test").overall.mrr

        distmult = make_distmult(tiny_dataset.num_entities, tiny_dataset.num_relations,
                                 16, np.random.default_rng(0))
        Trainer(tiny_dataset, config).train(distmult)
        distmult_mrr = evaluator.evaluate(distmult, "test").overall.mrr
        assert cp_mrr < 0.6 * distmult_mrr
