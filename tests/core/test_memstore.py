"""MemStore: the memory-mapped array store behind the scale path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.memstore import (
    STORE_META_FILE,
    MemStore,
    array_memory,
    is_mapped,
    mappable_source,
    npy_bytes,
    open_mapped,
    payload_meta,
)
from repro.errors import CorruptArtifactError, MissingArtifactError, ServingError
from repro.reliability.faults import FaultInjector, FaultPlan, FaultSpec, fault_scope


def _store(tmp_path, **extra):
    return MemStore.create(tmp_path / "store", extra=extra or None)


class TestRoundTrip:
    def test_put_get_returns_readonly_mapping(self, tmp_path, rng):
        store = _store(tmp_path)
        table = rng.normal(size=(20, 8))
        mapped = store.put("weights", table)
        assert is_mapped(mapped)
        assert not mapped.flags.writeable
        np.testing.assert_array_equal(np.asarray(mapped), table)

    def test_reopen_sees_same_entries(self, tmp_path, rng):
        store = _store(tmp_path)
        store.put("a", rng.normal(size=(4, 4)))
        store.put("b", np.arange(6, dtype=np.int32))
        reopened = MemStore.open(store.directory)
        assert reopened.names() == ("a", "b")
        np.testing.assert_array_equal(
            np.asarray(reopened.get("a")), np.asarray(store.get("a"))
        )
        assert reopened.nbytes() == store.nbytes()

    def test_put_with_dtype_downcasts(self, tmp_path, rng):
        store = _store(tmp_path)
        mapped = store.put("t", rng.normal(size=(5, 3)), dtype="float32")
        assert mapped.dtype == np.float32
        assert store.entry("t")["dtype"] == "float32"

    def test_replace_entry_atomically(self, tmp_path, rng):
        store = _store(tmp_path)
        store.put("x", np.zeros((3, 3)))
        store.put("x", np.ones((2, 2)))
        fresh = MemStore.open(store.directory)
        assert tuple(fresh.entry("x")["shape"]) == (2, 2)
        np.testing.assert_array_equal(np.asarray(fresh.get("x")), np.ones((2, 2)))

    def test_get_all_is_sorted(self, tmp_path, rng):
        store = _store(tmp_path)
        for name in ("zeta", "alpha", "mid"):
            store.put(name, rng.normal(size=(2,)))
        assert list(store.get_all()) == ["alpha", "mid", "zeta"]

    def test_update_extra_persists(self, tmp_path):
        store = _store(tmp_path, kind="folded")
        store.update_extra(fingerprint="abc123")
        reopened = MemStore.open(store.directory)
        assert reopened.extra == {"kind": "folded", "fingerprint": "abc123"}

    def test_hashes_cover_payloads_and_meta(self, tmp_path, rng):
        store = _store(tmp_path)
        store.put("emb", rng.normal(size=(3, 3)))
        hashes = store.hashes(prefix="ckpt/store/")
        assert set(hashes) == {"ckpt/store/emb.npy", f"ckpt/store/{STORE_META_FILE}"}


class TestTypedErrors:
    def test_open_missing_directory(self, tmp_path):
        with pytest.raises(MissingArtifactError):
            MemStore.open(tmp_path / "nowhere")

    def test_open_torn_meta(self, tmp_path):
        directory = tmp_path / "s"
        directory.mkdir()
        (directory / STORE_META_FILE).write_text("{not json")
        with pytest.raises(CorruptArtifactError):
            MemStore.open(directory)

    def test_get_unknown_name(self, tmp_path):
        with pytest.raises(MissingArtifactError):
            _store(tmp_path).get("ghost")

    def test_unsafe_name_rejected(self, tmp_path):
        with pytest.raises(ServingError):
            _store(tmp_path).put("../escape", np.zeros(2))

    def test_deleted_payload_file(self, tmp_path, rng):
        store = _store(tmp_path)
        store.put("gone", rng.normal(size=(2, 2)))
        (store.directory / "gone.npy").unlink()
        with pytest.raises(MissingArtifactError):
            MemStore.open(store.directory).get("gone")

    def test_direct_file_surgery_is_caught(self, tmp_path, rng):
        store = _store(tmp_path)
        store.put("w", rng.normal(size=(8, 8)))
        path = store.directory / "w.npy"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip a byte deep in the data region
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptArtifactError, match="integrity"):
            MemStore.open(store.directory).get("w")

    def test_verify_all_ignores_the_per_instance_cache(self, tmp_path, rng):
        store = _store(tmp_path)
        store.put("w", rng.normal(size=(8, 8)))
        store.get("w")  # populates the verified-once cache
        path = store.directory / "w.npy"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        store.get("w")  # cached: no re-hash
        with pytest.raises(CorruptArtifactError):
            store.verify_all()


class TestFaultInjection:
    """Injected write corruption must surface as typed artifact errors."""

    @pytest.mark.parametrize(
        "spec",
        [
            FaultSpec(site="io.write", kind="truncate", drop_bytes=16, match=".npy"),
            FaultSpec(site="io.write", kind="byteflip", seed=7, match=".npy"),
        ],
        ids=["truncate", "byteflip"],
    )
    def test_corrupting_fault_raises_typed_error(self, tmp_path, rng, spec):
        store = _store(tmp_path)
        with fault_scope(FaultInjector(FaultPlan.of(spec))):
            with pytest.raises(CorruptArtifactError):
                store.put("emb", rng.normal(size=(16, 16)))


class TestStandaloneHelpers:
    def test_open_mapped_round_trip(self, tmp_path, rng):
        table = rng.normal(size=(6, 2))
        path = tmp_path / "t.npy"
        path.write_bytes(npy_bytes(table))
        mapped = open_mapped(path, dtype="float64", shape=(6, 2))
        np.testing.assert_array_equal(np.asarray(mapped), table)

    def test_open_mapped_missing(self, tmp_path):
        with pytest.raises(MissingArtifactError):
            open_mapped(tmp_path / "absent.npy")

    @pytest.mark.parametrize(
        "kwargs", [{"shape": (9, 9)}, {"dtype": "float32"}], ids=["shape", "dtype"]
    )
    def test_open_mapped_layout_mismatch(self, tmp_path, rng, kwargs):
        path = tmp_path / "t.npy"
        path.write_bytes(npy_bytes(rng.normal(size=(6, 2))))
        with pytest.raises(CorruptArtifactError):
            open_mapped(path, **kwargs)

    def test_mappable_source_round_trips_store_arrays(self, tmp_path, rng):
        store = _store(tmp_path)
        mapped = store.put("w", rng.normal(size=(4, 4)))
        source = mappable_source(mapped)
        assert source is not None
        path, dtype, shape = source
        assert path.endswith("w.npy") and dtype == "float64" and shape == (4, 4)

    def test_mappable_source_rejects_views_and_plain_arrays(self, tmp_path, rng):
        store = _store(tmp_path)
        mapped = store.put("w", rng.normal(size=(4, 4)))
        assert mappable_source(mapped[1:]) is None
        assert mappable_source(np.zeros((2, 2))) is None

    def test_array_memory_splits_mapped_from_private(self, tmp_path, rng):
        store = _store(tmp_path)
        mapped = store.put("w", rng.normal(size=(4, 4)))
        private = np.zeros((2, 2))
        in_process, mapped_bytes = array_memory([mapped, private, None])
        assert in_process == private.nbytes
        assert mapped_bytes == mapped.nbytes

    def test_payload_meta_reports_mapping(self, tmp_path, rng):
        store = _store(tmp_path)
        mapped = store.put("w", rng.normal(size=(4, 4)))
        meta = payload_meta({"w": mapped, "p": np.zeros(3, dtype=np.float32)})
        assert meta["w"]["mapped"] is True
        assert meta["p"] == {"shape": [3], "dtype": "float32", "mapped": False}
