"""Gradient certification for the multi-embedding training path.

The hot path uses hand-derived analytic gradients; these tests pin them
against (a) the autodiff engine evaluating the same Eq. 8 + Eq. 16
computation, and (b) central finite differences.  Together they certify
that training optimises exactly the paper's objective.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import weights as W
from repro.core.interaction import MultiEmbeddingModel
from repro.core.models import make_model
from repro.nn.autodiff import Tensor, numeric_gradient
from repro.nn.losses import LogisticLoss
from repro.nn.optimizers import aggregate_rows

NE, NR, DIM, BATCH = 12, 3, 5, 9


@pytest.fixture
def setup(rng):
    model = make_model(W.COMPLEX, NE, NR, rng, dim=DIM, initializer="normal")
    heads = rng.integers(0, NE, BATCH)
    tails = rng.integers(0, NE, BATCH)
    rels = rng.integers(0, NR, BATCH)
    labels = np.where(rng.random(BATCH) < 0.5, 1.0, -1.0)
    return model, heads, tails, rels, labels


def _analytic_table_grads(model, heads, tails, rels, labels):
    """Dense per-table loss gradients using the model's analytic path."""
    cache = model._forward(heads, tails, rels)
    grad_scores = model.loss.grad_score(cache.scores, labels)
    grad_h, grad_t, grad_r = model._score_gradients(cache, grad_scores)
    entity_grad = np.zeros_like(model.entity_embeddings)
    rows, grads = aggregate_rows(
        np.concatenate([heads, tails]), np.concatenate([grad_h, grad_t], axis=0)
    )
    entity_grad[rows] = grads
    relation_grad = np.zeros_like(model.relation_embeddings)
    rel_rows, rel_grads = aggregate_rows(rels, grad_r)
    relation_grad[rel_rows] = rel_grads
    omega_grad = model._omega_gradient(cache, grad_scores)
    return entity_grad, relation_grad, omega_grad


def _autodiff_loss(entity_table, relation_table, omega, heads, tails, rels, labels):
    """Eq. 8 + logistic loss expressed through the autodiff engine."""
    entities = Tensor(entity_table, requires_grad=True)
    relations = Tensor(relation_table, requires_grad=True)
    omega_t = Tensor(omega, requires_grad=True)
    n_e, n_r = entity_table.shape[1], relation_table.shape[1]
    h = entities.take_rows(heads)
    t = entities.take_rows(tails)
    r = relations.take_rows(rels)
    # The engine has no fancy inner-axis indexing, so each slot is sliced
    # with a constant selector mask — fully differentiable and explicit.
    total = None
    for i in range(n_e):
        for j in range(n_e):
            for k in range(n_r):
                selector_h = np.zeros((1, n_e, 1))
                selector_h[0, i, 0] = 1.0
                selector_t = np.zeros((1, n_e, 1))
                selector_t[0, j, 0] = 1.0
                selector_r = np.zeros((1, n_r, 1))
                selector_r[0, k, 0] = 1.0
                h_slot = (h * Tensor(selector_h)).sum(axis=1)
                t_slot = (t * Tensor(selector_t)).sum(axis=1)
                r_slot = (r * Tensor(selector_r)).sum(axis=1)
                tri = (h_slot * t_slot * r_slot).sum(axis=1)
                selector_o = np.zeros((n_e, n_e, n_r))
                selector_o[i, j, k] = 1.0
                weight = (omega_t * Tensor(selector_o)).sum()
                contribution = tri * weight
                total = contribution if total is None else total + contribution
    loss = ((total * Tensor(-labels)).softplus()).mean()
    loss.backward()
    return loss, entities.grad, relations.grad, omega_t.grad


class TestAnalyticVsAutodiff:
    def test_all_gradients_match(self, setup):
        model, heads, tails, rels, labels = setup
        entity_grad, relation_grad, omega_grad = _analytic_table_grads(
            model, heads, tails, rels, labels
        )
        _, ad_entity, ad_relation, ad_omega = _autodiff_loss(
            model.entity_embeddings,
            model.relation_embeddings,
            np.asarray(model.omega),
            heads,
            tails,
            rels,
            labels,
        )
        assert np.allclose(entity_grad, ad_entity, atol=1e-10)
        assert np.allclose(relation_grad, ad_relation, atol=1e-10)
        assert np.allclose(omega_grad, ad_omega, atol=1e-10)

    def test_quaternion_gradients_match(self, rng):
        model = make_model(W.QUATERNION, NE, NR, rng, dim=3, initializer="normal")
        heads = rng.integers(0, NE, 4)
        tails = rng.integers(0, NE, 4)
        rels = rng.integers(0, NR, 4)
        labels = np.array([1.0, -1.0, 1.0, -1.0])
        entity_grad, relation_grad, _ = _analytic_table_grads(
            model, heads, tails, rels, labels
        )
        _, ad_entity, ad_relation, _ = _autodiff_loss(
            model.entity_embeddings,
            model.relation_embeddings,
            np.asarray(model.omega),
            heads,
            tails,
            rels,
            labels,
        )
        assert np.allclose(entity_grad, ad_entity, atol=1e-10)
        assert np.allclose(relation_grad, ad_relation, atol=1e-10)


class TestAnalyticVsFiniteDifferences:
    def test_entity_gradient(self, setup):
        model, heads, tails, rels, labels = setup
        entity_grad, _, _ = _analytic_table_grads(model, heads, tails, rels, labels)
        loss = LogisticLoss()
        original = model.entity_embeddings

        def loss_at(table):
            model.entity_embeddings = table
            scores = model.score_triples(heads, tails, rels)
            return loss.value(scores, labels)

        numeric = numeric_gradient(loss_at, original.copy())
        model.entity_embeddings = original
        assert np.allclose(entity_grad, numeric, atol=1e-6)

    def test_relation_gradient(self, setup):
        model, heads, tails, rels, labels = setup
        _, relation_grad, _ = _analytic_table_grads(model, heads, tails, rels, labels)
        loss = LogisticLoss()
        original = model.relation_embeddings

        def loss_at(table):
            model.relation_embeddings = table
            scores = model.score_triples(heads, tails, rels)
            return loss.value(scores, labels)

        numeric = numeric_gradient(loss_at, original.copy())
        model.relation_embeddings = original
        assert np.allclose(relation_grad, numeric, atol=1e-6)

    def test_omega_gradient(self, setup):
        model, heads, tails, rels, labels = setup
        _, _, omega_grad = _analytic_table_grads(model, heads, tails, rels, labels)
        loss = LogisticLoss()
        h = model.entity_embeddings[heads]
        t = model.entity_embeddings[tails]
        r = model.relation_embeddings[rels]

        def loss_at(omega):
            scores = np.einsum("ijk,bid,bjd,bkd->b", omega, h, t, r)
            return loss.value(scores, labels)

        numeric = numeric_gradient(loss_at, np.asarray(model.omega).copy())
        assert np.allclose(omega_grad, numeric, atol=1e-6)


class TestRegularizedObjective:
    def test_train_step_loss_matches_eq16(self, rng):
        """The reported loss equals data loss + scaled L2 of touched rows."""
        model = MultiEmbeddingModel(
            NE, NR, DIM, W.COMPLEX, rng, regularization=0.1,
            initializer="normal", unit_norm_entities=False,
        )
        positives = np.array([[0, 1, 0], [2, 3, 1]])
        negatives = np.array([[0, 4, 0], [5, 3, 1]])
        triples = np.concatenate([positives, negatives])
        labels = np.array([1.0, 1.0, -1.0, -1.0])
        scores = model.score_triples(triples[:, 0], triples[:, 1], triples[:, 2])
        data_loss = LogisticLoss().value(scores, labels)
        coef = model.regularizer.coefficient
        reg = 0.0
        for h, t, r in triples:
            reg += coef * (
                np.sum(model.entity_embeddings[h] ** 2)
                + np.sum(model.entity_embeddings[t] ** 2)
                + np.sum(model.relation_embeddings[r] ** 2)
            )
        expected = data_loss + reg / len(triples)

        from repro.nn.optimizers import SGD

        reported = model.train_step(positives, negatives, SGD(learning_rate=1e-12))
        assert reported == pytest.approx(expected)
