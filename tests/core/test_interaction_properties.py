"""Property-based tests of structural invariants of the Eq. 8 scorer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import make_model
from repro.core.weights import WeightVector

NE, NR, DIM, BATCH = 10, 3, 4, 6

weight_tuples = st.lists(
    st.floats(-3, 3, allow_nan=False), min_size=8, max_size=8
).filter(lambda values: any(v != 0 for v in values))


def _scores_for_omega(flat, seed=0):
    weights = WeightVector.from_flat("w", flat)
    model = make_model(weights, NE, NR, np.random.default_rng(seed), dim=DIM,
                       initializer="normal")
    rng = np.random.default_rng(1)
    heads = rng.integers(0, NE, BATCH)
    tails = rng.integers(0, NE, BATCH)
    rels = rng.integers(0, NR, BATCH)
    return model.score_triples(heads, tails, rels)


@settings(max_examples=30, deadline=None)
@given(weight_tuples, weight_tuples)
def test_score_additive_in_omega(flat_a, flat_b):
    """S(ω_a + ω_b) = S(ω_a) + S(ω_b) — the lattice sum is linear in ω."""
    combined = tuple(a + b for a, b in zip(flat_a, flat_b))
    if all(v == 0 for v in combined):
        return
    sum_of_scores = _scores_for_omega(tuple(flat_a)) + _scores_for_omega(tuple(flat_b))
    combined_scores = _scores_for_omega(combined)
    assert np.allclose(combined_scores, sum_of_scores, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(weight_tuples, st.floats(-5, 5, allow_nan=False).filter(lambda c: c != 0))
def test_score_homogeneous_in_omega(flat, scale):
    """S(c·ω) = c·S(ω)."""
    scaled = tuple(scale * v for v in flat)
    assert np.allclose(
        _scores_for_omega(scaled), scale * _scores_for_omega(tuple(flat)), atol=1e-8
    )


@settings(max_examples=20, deadline=None)
@given(weight_tuples)
def test_slot_permutation_invariance(flat):
    """Permuting entity slots in both ω and the embedding tables leaves
    every score unchanged — the symmetry behind Table 1's 'equiv.' rows."""
    weights = WeightVector.from_flat("w", tuple(flat))
    model = make_model(weights, NE, NR, np.random.default_rng(3), dim=DIM,
                       initializer="normal")
    permuted_tensor = weights.tensor[np.ix_([1, 0], [1, 0], [0, 1])]
    permuted = WeightVector("w_perm", permuted_tensor)
    permuted_model = make_model(permuted, NE, NR, np.random.default_rng(4), dim=DIM,
                                initializer="normal")
    permuted_model.entity_embeddings = model.entity_embeddings[:, [1, 0], :].copy()
    permuted_model.relation_embeddings = model.relation_embeddings.copy()

    rng = np.random.default_rng(5)
    heads = rng.integers(0, NE, BATCH)
    tails = rng.integers(0, NE, BATCH)
    rels = rng.integers(0, NR, BATCH)
    assert np.allclose(
        model.score_triples(heads, tails, rels),
        permuted_model.score_triples(heads, tails, rels),
        atol=1e-9,
    )


@settings(max_examples=15, deadline=None)
@given(weight_tuples)
def test_all_tail_sweep_matches_pointwise(flat):
    """The factorised 1-vs-all sweep equals triple-at-a-time scoring."""
    weights = WeightVector.from_flat("w", tuple(flat))
    model = make_model(weights, NE, NR, np.random.default_rng(6), dim=DIM,
                       initializer="normal")
    rng = np.random.default_rng(7)
    heads = rng.integers(0, NE, 3)
    rels = rng.integers(0, NR, 3)
    matrix = model.score_all_tails(heads, rels)
    for entity in range(NE):
        pointwise = model.score_triples(heads, np.full(3, entity), rels)
        assert np.allclose(matrix[:, entity], pointwise, atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(weight_tuples)
def test_symmetric_omega_gives_symmetric_scores(flat):
    """If ω equals its head/tail transpose, every score is h↔t symmetric —
    the exact criterion behind the §6.1.2 distinguishability property."""
    tensor = WeightVector.from_flat("w", tuple(flat)).tensor
    symmetrised = (tensor + np.swapaxes(tensor, 0, 1)) / 2.0
    if not symmetrised.any():
        return
    weights = WeightVector("sym", symmetrised)
    model = make_model(weights, NE, NR, np.random.default_rng(8), dim=DIM,
                       initializer="normal")
    rng = np.random.default_rng(9)
    heads = rng.integers(0, NE, BATCH)
    tails = rng.integers(0, NE, BATCH)
    rels = rng.integers(0, NR, BATCH)
    assert np.allclose(
        model.score_triples(heads, tails, rels),
        model.score_triples(tails, heads, rels),
        atol=1e-9,
    )


def test_score_gradient_consistency_random_omegas():
    """Analytic gradients hold for arbitrary ω, not just the presets."""
    from repro.nn.autodiff import numeric_gradient
    from repro.nn.losses import LogisticLoss

    rng = np.random.default_rng(10)
    for _ in range(3):
        flat = tuple(rng.normal(size=8))
        weights = WeightVector.from_flat("w", flat)
        model = make_model(weights, NE, NR, np.random.default_rng(11), dim=DIM,
                           initializer="normal")
        heads = rng.integers(0, NE, 5)
        tails = rng.integers(0, NE, 5)
        rels = rng.integers(0, NR, 5)
        labels = np.where(rng.random(5) < 0.5, 1.0, -1.0)
        loss = LogisticLoss()

        cache = model._forward(heads, tails, rels)
        grad_scores = loss.grad_score(cache.scores, labels)
        grad_h, _grad_t, _grad_r = model._score_gradients(cache, grad_scores)

        original = model.entity_embeddings

        def loss_at(table):
            model.entity_embeddings = table
            scores = model.score_triples(heads, tails, rels)
            return loss.value(scores, labels)

        numeric = numeric_gradient(loss_at, original.copy())
        model.entity_embeddings = original
        dense = np.zeros_like(original)
        np.add.at(dense, heads, grad_h)
        t_grad = model._score_gradients(cache, grad_scores)[1]
        np.add.at(dense, tails, t_grad)
        assert np.allclose(dense, numeric, atol=1e-6)
