"""Unit tests for the learned-ω model (§3.3, Table 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.learned import (
    LearnedWeightModel,
    SigmoidTransform,
    SoftmaxTransform,
    TanhTransform,
    WeightTransform,
    make_transform,
)
from repro.core.models import make_learned_weight_model
from repro.errors import ConfigError
from repro.nn.autodiff import numeric_gradient
from repro.nn.optimizers import Adam
from repro.nn.regularizers import DirichletSparsityRegularizer

NE, NR, DIM = 12, 3, 4


class TestTransforms:
    @pytest.mark.parametrize("name,cls", [
        ("identity", WeightTransform),
        ("tanh", TanhTransform),
        ("sigmoid", SigmoidTransform),
        ("softmax", SoftmaxTransform),
    ])
    def test_registry(self, name, cls):
        assert isinstance(make_transform(name), cls)

    def test_unknown_raises(self):
        with pytest.raises(ConfigError):
            make_transform("relu")

    def test_tanh_range(self, rng):
        omega = TanhTransform().forward(rng.normal(size=(2, 2, 2)) * 10)
        assert np.all(omega > -1.0) and np.all(omega < 1.0)

    def test_sigmoid_range(self, rng):
        omega = SigmoidTransform().forward(rng.normal(size=(2, 2, 2)) * 10)
        assert np.all(omega > 0.0) and np.all(omega < 1.0)

    def test_softmax_simplex(self, rng):
        omega = SoftmaxTransform().forward(rng.normal(size=(2, 2, 2)))
        assert np.all(omega > 0.0)
        assert omega.sum() == pytest.approx(1.0)

    def test_softmax_shift_invariant(self, rng):
        rho = rng.normal(size=(2, 2, 2))
        t = SoftmaxTransform()
        assert np.allclose(t.forward(rho), t.forward(rho + 100.0))

    @pytest.mark.parametrize("name", ["identity", "tanh", "sigmoid", "softmax"])
    def test_backward_matches_finite_differences(self, name, rng):
        transform = make_transform(name)
        rho = rng.normal(size=(2, 2, 2))
        downstream = rng.normal(size=(2, 2, 2))

        def scalar(r):
            return float(np.sum(transform.forward(r) * downstream))

        omega = transform.forward(rho)
        analytic = transform.backward(rho, omega, downstream)
        numeric = numeric_gradient(scalar, rho.copy())
        assert np.allclose(analytic, numeric, atol=1e-6)


class TestLearnedWeightModel:
    def test_omega_tracks_rho(self, rng):
        model = LearnedWeightModel(NE, NR, DIM, rng, transform="sigmoid")
        assert np.allclose(model.omega, SigmoidTransform().forward(model.rho))

    def test_initial_omega_near_uniform(self, rng):
        model = LearnedWeightModel(NE, NR, DIM, rng, transform="identity", init_scale=0.01)
        assert np.allclose(model.omega, 1.0, atol=0.05)

    def test_train_step_updates_rho(self, rng):
        model = LearnedWeightModel(NE, NR, DIM, rng)
        before = model.rho.copy()
        model.train_step(
            np.array([[0, 1, 0]]), np.array([[0, 2, 0]]), Adam(learning_rate=0.1)
        )
        assert not np.allclose(model.rho, before)

    def test_omega_cache_refreshed_after_step(self, rng):
        model = LearnedWeightModel(NE, NR, DIM, rng, transform="tanh")
        model.train_step(
            np.array([[0, 1, 0]]), np.array([[0, 2, 0]]), Adam(learning_rate=0.1)
        )
        assert np.allclose(model.omega, np.tanh(model.rho))

    def test_sparsity_changes_updates(self, rng):
        dense = LearnedWeightModel(NE, NR, DIM, np.random.default_rng(3))
        sparse = LearnedWeightModel(
            NE, NR, DIM, np.random.default_rng(3),
            sparsity=DirichletSparsityRegularizer(alpha=1 / 16, strength=0.5),
        )
        positives = np.array([[0, 1, 0]])
        negatives = np.array([[0, 2, 0]])
        # SGD rather than Adam: Adam's first step is sign-normalised, which
        # would mask the magnitude difference the sparsity term introduces.
        from repro.nn.optimizers import SGD

        dense.train_step(positives, negatives, SGD(learning_rate=0.1))
        sparse.train_step(positives, negatives, SGD(learning_rate=0.1))
        assert not np.allclose(dense.rho, sparse.rho)

    def test_name_reflects_configuration(self, rng):
        plain = LearnedWeightModel(NE, NR, DIM, rng, transform="softmax")
        assert "softmax" in plain.name
        sparse = LearnedWeightModel(
            NE, NR, DIM, rng, sparsity=DirichletSparsityRegularizer()
        )
        assert "sparse" in sparse.name

    def test_parameter_count_includes_rho(self, rng):
        model = LearnedWeightModel(NE, NR, DIM, rng)
        base = NE * 2 * DIM + NR * 2 * DIM
        assert model.parameter_count() == base + 8

    def test_current_weight_vector_snapshot(self, rng):
        model = LearnedWeightModel(NE, NR, DIM, rng)
        snapshot = model.current_weight_vector()
        assert np.allclose(snapshot.tensor, model.omega)

    def test_bad_init_scale_raises(self, rng):
        with pytest.raises(ConfigError):
            LearnedWeightModel(NE, NR, DIM, rng, init_scale=0.0)


class TestFactory:
    def test_make_learned_model(self, rng):
        model = make_learned_weight_model(NE, NR, total_dim=8, rng=rng, transform="tanh")
        assert model.dim == 4
        assert isinstance(model.transform, TanhTransform)

    def test_sparse_flag(self, rng):
        model = make_learned_weight_model(NE, NR, total_dim=8, rng=rng, sparse=True)
        assert model.sparsity is not None
        assert model.sparsity.alpha == pytest.approx(1 / 16)
        assert model.sparsity.strength == pytest.approx(1e-2)

    def test_odd_total_dim_raises(self, rng):
        with pytest.raises(ConfigError):
            make_learned_weight_model(NE, NR, total_dim=9, rng=rng)
