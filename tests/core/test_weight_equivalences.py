"""Table 1 certification: the ω presets reproduce each original model.

These tests are the heart of the reproduction: for shared random
embedding tables, the Eq. 8 lattice score under each Table 1 weight
vector must equal the *original* model's score computed with its native
formulation (complex algebra for ComplEx, role-based embeddings for
CP/CPh, quaternion algebra for the four-embedding model).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.weight_space import are_equivalent
from repro.core import weights as W
from repro.core.direct import (
    complex_score_direct,
    cp_score_direct,
    cph_score_direct,
    distmult_score_direct,
    quaternion_score_direct,
)
from repro.core.models import make_model

NUM_ENTITIES, NUM_RELATIONS, DIM, BATCH = 20, 4, 8, 16


@pytest.fixture
def batch(rng):
    heads = rng.integers(0, NUM_ENTITIES, BATCH)
    tails = rng.integers(0, NUM_ENTITIES, BATCH)
    rels = rng.integers(0, NUM_RELATIONS, BATCH)
    return heads, tails, rels


def _model(weights, rng, initializer="normal"):
    return make_model(
        weights, NUM_ENTITIES, NUM_RELATIONS, rng, dim=DIM, initializer=initializer
    )


class TestDerivations:
    def test_distmult_preset_equals_direct(self, rng, batch):
        model = _model(W.DISTMULT, rng)
        assert np.allclose(
            model.score_triples(*batch), distmult_score_direct(model, *batch)
        )

    def test_distmult_n1_equals_direct(self, rng, batch):
        model = _model(W.DISTMULT_N1, rng)
        assert np.allclose(
            model.score_triples(*batch), distmult_score_direct(model, *batch)
        )

    def test_complex_preset_equals_complex_algebra(self, rng, batch):
        """Eq. 10 == Eq. 5: the central ComplEx derivation."""
        model = _model(W.COMPLEX, rng)
        assert np.allclose(
            model.score_triples(*batch), complex_score_direct(model, *batch)
        )

    def test_cp_preset_equals_role_based(self, rng, batch):
        model = _model(W.CP, rng)
        assert np.allclose(model.score_triples(*batch), cp_score_direct(model, *batch))

    def test_cph_preset_equals_eq11(self, rng, batch):
        """ω = (0,0,1,0,0,1,0,0) == CP(h,t,r) + CP(t,h,r_a) with r_a = r^(2)."""
        model = _model(W.CPH, rng)
        assert np.allclose(model.score_triples(*batch), cph_score_direct(model, *batch))

    def test_quaternion_preset_equals_quaternion_algebra(self, rng, batch):
        """Eq. 14 == Eq. 13: the four-embedding quaternion derivation."""
        model = _model(W.QUATERNION, rng)
        assert np.allclose(
            model.score_triples(*batch), quaternion_score_direct(model, *batch)
        )


class TestEquivalenceOrbits:
    """Table 1's "equiv." columns are symmetry-orbit relabelings."""

    @pytest.mark.parametrize("equiv", [W.COMPLEX_EQUIV_1, W.COMPLEX_EQUIV_2, W.COMPLEX_EQUIV_3])
    def test_complex_equivalents_in_orbit(self, equiv):
        assert are_equivalent(W.COMPLEX, equiv)

    def test_cph_equivalent_in_orbit(self):
        assert are_equivalent(W.CPH, W.CPH_EQUIV)

    def test_cp_not_equivalent_to_cph(self):
        assert not are_equivalent(W.CP, W.CPH)

    def test_distmult_not_equivalent_to_complex(self):
        assert not are_equivalent(W.DISTMULT, W.COMPLEX)

    def test_complex_equiv_1_is_head_tail_swap(self, rng, batch):
        """ComplEx equiv. 1 scores (h, t) like ComplEx scores (t, h)."""
        model = _model(W.COMPLEX, rng)
        equiv_model = _model(W.COMPLEX_EQUIV_1, np.random.default_rng(0))
        equiv_model.entity_embeddings = model.entity_embeddings
        equiv_model.relation_embeddings = model.relation_embeddings
        heads, tails, rels = batch
        assert np.allclose(
            equiv_model.score_triples(heads, tails, rels),
            model.score_triples(tails, heads, rels),
        )

    def test_complex_equiv_via_conjugation(self, rng, batch):
        """Negating the imaginary entity parts maps ComplEx onto equiv. 1.

        This is the parameter relabelling that makes the two weight
        vectors the same model family.
        """
        model = _model(W.COMPLEX, rng)
        equiv_model = _model(W.COMPLEX_EQUIV_1, np.random.default_rng(0))
        conjugated = model.entity_embeddings.copy()
        conjugated[:, 1, :] *= -1.0
        equiv_model.entity_embeddings = conjugated
        equiv_model.relation_embeddings = model.relation_embeddings
        assert np.allclose(
            equiv_model.score_triples(*batch), model.score_triples(*batch)
        )


class TestSymmetryBehaviour:
    def test_distmult_score_symmetric(self, rng, batch):
        model = _model(W.DISTMULT, rng)
        heads, tails, rels = batch
        assert np.allclose(
            model.score_triples(heads, tails, rels),
            model.score_triples(tails, heads, rels),
        )

    def test_uniform_score_symmetric(self, rng, batch):
        model = _model(W.UNIFORM, rng)
        heads, tails, rels = batch
        assert np.allclose(
            model.score_triples(heads, tails, rels),
            model.score_triples(tails, heads, rels),
        )

    @pytest.mark.parametrize("weights", [W.COMPLEX, W.CP, W.CPH, W.QUATERNION])
    def test_asymmetric_models_not_symmetric(self, weights, rng, batch):
        model = _model(weights, rng)
        heads, tails, rels = batch
        forward = model.score_triples(heads, tails, rels)
        backward = model.score_triples(tails, heads, rels)
        assert not np.allclose(forward, backward)


class TestCphDataAugmentationView:
    """Eq. 11: the CPh weight vector equals CP over an augmented dataset.

    Scoring (h, t, r) with CPh's ω on tables (E, R) is identical to
    CP-scoring (h, t, r) plus CP-scoring (t, h, r_aug) when the augmented
    relation's first vector is set to r's second vector.
    """

    def test_score_equivalence(self, rng, batch):
        cph_model = _model(W.CPH, rng)
        cp_model = _model(W.CP, np.random.default_rng(0))
        cp_model.entity_embeddings = cph_model.entity_embeddings
        # Augmented relation table: [r^(1) ... ; r^(2) ...] stacked.
        stacked = np.concatenate(
            [cph_model.relation_embeddings, cph_model.relation_embeddings[:, ::-1, :]],
            axis=0,
        )
        cp_model.relation_embeddings = stacked
        cp_model.num_relations = 2 * NUM_RELATIONS
        heads, tails, rels = batch
        expected = cp_model.score_triples(heads, tails, rels) + cp_model.score_triples(
            tails, heads, rels + NUM_RELATIONS
        )
        assert np.allclose(cph_model.score_triples(heads, tails, rels), expected)
