"""Unit tests for the model factory (:mod:`repro.core.models`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import weights as W
from repro.core.models import (
    MODEL_FACTORIES,
    make_complex,
    make_cp,
    make_cph,
    make_distmult,
    make_model,
    make_quaternion,
    parity_dim,
)
from repro.errors import ConfigError

NE, NR = 10, 3


class TestParityDim:
    def test_paper_budgets(self):
        # §5.3: 400 total -> 400 one-emb, 200 two-emb, 100 four-emb.
        assert parity_dim(400, W.DISTMULT_N1) == 400
        assert parity_dim(400, W.COMPLEX) == 200
        assert parity_dim(400, W.QUATERNION) == 100

    def test_indivisible_raises(self):
        with pytest.raises(ConfigError):
            parity_dim(30, W.QUATERNION)


class TestMakeModel:
    def test_by_preset_name(self, rng):
        model = make_model("complex", NE, NR, rng, dim=8)
        assert model.name == "ComplEx"

    def test_by_weight_vector(self, rng):
        model = make_model(W.GOOD_EXAMPLE_2, NE, NR, rng, dim=8)
        assert model.name == "Good example 2"

    def test_total_dim_split(self, rng):
        model = make_model("complex", NE, NR, rng, total_dim=16)
        assert model.dim == 8

    def test_dim_and_total_dim_exclusive(self, rng):
        with pytest.raises(ConfigError):
            make_model("complex", NE, NR, rng, dim=4, total_dim=8)
        with pytest.raises(ConfigError):
            make_model("complex", NE, NR, rng)


class TestParameterParity:
    """§5.3: all models must have comparable parameter counts at one budget."""

    def test_entity_parameters_equal_across_families(self, rng):
        budget = 32
        distmult = make_distmult(NE, NR, budget, rng)
        cplx = make_complex(NE, NR, budget, rng)
        quat = make_quaternion(NE, NR, budget, rng)
        assert (
            distmult.entity_embeddings.size
            == cplx.entity_embeddings.size
            == quat.entity_embeddings.size
        )

    def test_factories_registry(self, rng):
        for name, factory in MODEL_FACTORIES.items():
            model = factory(NE, NR, total_dim=16, rng=rng)
            assert model.num_entities == NE, name


class TestNamedFactories:
    def test_distmult_is_one_embedding(self, rng):
        model = make_distmult(NE, NR, 16, rng)
        assert model.entity_embeddings.shape == (NE, 1, 16)
        assert model.name == "DistMult"

    def test_cp_role_vectors(self, rng):
        model = make_cp(NE, NR, 16, rng)
        assert model.entity_embeddings.shape == (NE, 2, 8)
        assert model.weights == W.CP

    def test_cph_weights(self, rng):
        assert make_cph(NE, NR, 16, rng).weights == W.CPH

    def test_quaternion_four_vectors(self, rng):
        model = make_quaternion(NE, NR, 16, rng)
        assert model.entity_embeddings.shape == (NE, 4, 4)
        assert "Quaternion" in model.name

    def test_regularization_forwarded(self, rng):
        model = make_complex(NE, NR, 16, rng, regularization=0.5)
        assert model.regularizer.strength == 0.5

    def test_distmult_n2_equals_distmult_n1_scores(self, rng):
        """The Table 1 two-embedding DistMult row scores identically to the
        native one-embedding DistMult when the active vectors coincide."""
        n1 = make_distmult(NE, NR, 8, np.random.default_rng(5), initializer="normal")
        n2 = make_model(W.DISTMULT, NE, NR, np.random.default_rng(6), dim=8,
                        initializer="normal")
        n2.entity_embeddings[:, 0, :] = n1.entity_embeddings[:, 0, :]
        n2.relation_embeddings[:, 0, :] = n1.relation_embeddings[:, 0, :]
        heads = np.arange(5)
        tails = np.arange(5, 10)
        rels = np.zeros(5, dtype=int)
        assert np.allclose(
            n1.score_triples(heads, tails, rels), n2.score_triples(heads, tails, rels)
        )
