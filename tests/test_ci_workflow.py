"""The CI pipeline definition must stay loadable and coherent.

A broken workflow file fails silently until the next push; these checks
pull it into the tier-1 gate instead.  They also pin the contract the
satellites rely on: CI runs ``scripts/ci.sh`` (the same entrypoint as
local runs), quick mode on pull requests, the full suite on main.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent
WORKFLOW = REPO_ROOT / ".github" / "workflows" / "ci.yml"
CI_SCRIPT = REPO_ROOT / "scripts" / "ci.sh"

yaml = pytest.importorskip("yaml")


@pytest.fixture(scope="module")
def workflow() -> dict:
    return yaml.safe_load(WORKFLOW.read_text(encoding="utf-8"))


def test_workflow_is_valid_yaml(workflow):
    assert isinstance(workflow, dict)
    assert workflow.get("name") == "CI"


def test_workflow_triggers(workflow):
    # YAML 1.1 parses the bare key `on` as boolean True.
    triggers = workflow.get("on", workflow.get(True))
    assert "pull_request" in triggers
    assert triggers["push"]["branches"] == ["main"]


def test_matrix_covers_three_python_versions(workflow):
    for job in workflow["jobs"].values():
        versions = job["strategy"]["matrix"]["python-version"]
        assert versions == ["3.10", "3.11", "3.12"]


def test_jobs_run_the_shared_entrypoint(workflow):
    jobs = workflow["jobs"]
    assert set(jobs) == {"quick", "full"}
    quick_runs = [step.get("run", "") for step in jobs["quick"]["steps"]]
    full_runs = [step.get("run", "") for step in jobs["full"]["steps"]]
    assert any(run.strip() == "scripts/ci.sh --quick" for run in quick_runs)
    assert any(run.strip() == "scripts/ci.sh" for run in full_runs)
    assert jobs["quick"]["if"] == "github.event_name == 'pull_request'"
    assert jobs["full"]["if"] == "github.event_name == 'push'"


def test_ci_script_supports_quick_mode():
    text = CI_SCRIPT.read_text(encoding="utf-8")
    assert "--quick" in text
    assert "not slow and not pipeline" in text
    assert "test_bench_parallel_smoke" in text
    assert "test_bench_training_smoke" in text
    assert "test_bench_index_smoke" in text
    assert "test_bench_serving_smoke" in text
    assert "test_bench_reliability_smoke" in text
    assert "test_bench_ingest_smoke" in text
    assert "test_bench_obs_smoke" in text


def test_ci_script_runs_the_serving_daemon_smoke():
    """ci.sh must boot the daemon as a real subprocess after the suites."""
    text = CI_SCRIPT.read_text(encoding="utf-8")
    assert "scripts/serving_smoke.py" in text
    assert (REPO_ROOT / "scripts" / "serving_smoke.py").exists()


def test_ci_script_runs_the_chaos_smoke():
    """ci.sh must replay the recovery stories against real processes:
    truncate-then-resume, and a degraded-serving wire round-trip."""
    text = CI_SCRIPT.read_text(encoding="utf-8")
    assert "scripts/chaos_smoke.py" in text
    assert (REPO_ROOT / "scripts" / "chaos_smoke.py").exists()


def test_ci_script_is_executable():
    assert CI_SCRIPT.stat().st_mode & 0o111, "scripts/ci.sh must stay executable"


@pytest.mark.slow
def test_quick_gate_collects_cleanly():
    """`--quick`'s marker expression must stay parseable by pytest.

    Collection-only: the full quick gate runs as its own CI job; here we
    just guarantee the expression and test tree stay importable.
    """
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "--collect-only",
            "-q",
            "-m",
            "not slow and not pipeline",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin:/usr/local/bin"},
        timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr
