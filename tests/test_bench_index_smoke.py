"""Tier-1 smoke run of the index-recall benchmark.

Runs ``benchmarks/bench_index_recall.py`` in fast mode (4k-entity scaled
graph, short hot-lr training): the JSON payload must have the documented
schema and — this is the subsystem's acceptance criterion — some
``nprobe`` operating point must reach recall@10 ≥ 0.95 while scoring at
least 5x fewer entities than the exact sweep.  Wall-clock *speedup*
assertions belong to the slow full-scale run only (python-level probe
overhead dominates at smoke scale).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.index

BENCH_PATH = Path(__file__).parent.parent / "benchmarks" / "bench_index_recall.py"


@pytest.fixture(scope="module")
def bench_module():
    spec = importlib.util.spec_from_file_location("bench_index_recall", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def smoke_results(bench_module, tmp_path_factory):
    json_path = tmp_path_factory.mktemp("bench") / "BENCH_index.json"
    results = bench_module.run_benchmark(fast=True, json_path=json_path)
    return results, json_path


def test_json_written_with_schema(smoke_results):
    results, json_path = smoke_results
    on_disk = json.loads(json_path.read_text(encoding="utf-8"))
    assert on_disk["config"]["fast"] is True
    assert on_disk["dataset"]["num_entities"] == results["dataset"]["num_entities"]
    assert on_disk["curve"]
    for point in on_disk["curve"]:
        for key in (
            "nprobe",
            "recall_at_10",
            "probed_fraction",
            "scored_reduction",
            "batch_seconds",
            "speedup_vs_exact",
        ):
            assert key in point
        assert 0.0 <= point["recall_at_10"] <= 1.0
        assert 0.0 < point["probed_fraction"] <= 1.0
    assert "acceptance" in on_disk


def test_curve_is_monotone_in_probe_budget(smoke_results):
    """More probes ⇒ more entities scored and (weakly) better recall."""
    results, _ = smoke_results
    curve = results["curve"]
    fractions = [point["probed_fraction"] for point in curve]
    assert fractions == sorted(fractions)
    recalls = [point["recall_at_10"] for point in curve]
    # Allow tiny non-monotonic wiggles from tie-boundary reassociation.
    for earlier, later in zip(recalls, recalls[1:]):
        assert later >= earlier - 0.02


def test_acceptance_recall_at_reduced_probing(smoke_results, bench_module):
    """The headline claim: ≥0.95 recall@10 with ≥5x fewer entities scored."""
    results, _ = smoke_results
    assert results["acceptance"]["achieved"], results["curve"]
    best = results["acceptance"]["best_point"]
    assert best["recall_at_10"] >= bench_module.RECALL_TARGET
    assert best["scored_reduction"] >= bench_module.REDUCTION_TARGET
