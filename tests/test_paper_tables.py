"""Unit tests for :mod:`repro.paper_tables` (at toy scale)."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSettings, build_dataset
from repro.kg.synthetic import SyntheticKGConfig
from repro.paper_tables import (
    TABLE2_ROWS,
    TABLE3_ROWS,
    run_table2,
    run_table3,
    run_table4,
)


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(
        dataset_config=SyntheticKGConfig(
            num_entities=100, num_clusters=8, num_domains=3, seed=5
        ),
        total_dim=8,
        epochs=3,
        batch_size=256,
    )


@pytest.fixture(scope="module")
def dataset(settings):
    return build_dataset(settings)


class TestRowDefinitions:
    def test_table2_has_eight_rows(self):
        assert len(TABLE2_ROWS) == 8

    def test_table2_first_four_evaluate_train(self):
        assert all(with_train for _, _, with_train in TABLE2_ROWS[:4])
        assert not any(with_train for _, _, with_train in TABLE2_ROWS[4:])

    def test_table3_has_nine_rows(self):
        assert len(TABLE3_ROWS) == 9

    def test_table3_sparse_flags(self):
        sparse_count = sum(1 for _, _, sparse in TABLE3_ROWS if sparse)
        assert sparse_count == 4


class TestRunners:
    def test_run_table2_produces_all_rows(self, dataset, settings):
        rows = run_table2(dataset, settings)
        assert len(rows) == 8
        assert rows[0].label.startswith("DistMult")
        assert rows[0].train_metrics is not None
        assert rows[4].train_metrics is None
        assert all(0.0 <= row.test_metrics.mrr <= 1.0 for row in rows)

    def test_run_table3_returns_omega_snapshots(self, dataset, settings):
        rows, learned = run_table3(dataset, settings)
        assert len(rows) == 9
        # eight learned variants (uniform row is fixed)
        assert len(learned) == 8
        for omega in learned.values():
            assert omega.tensor.shape == (2, 2, 2)

    def test_run_table4_pair(self, dataset, settings):
        quaternion_row, complex_row = run_table4(dataset, settings)
        assert "Quaternion" in quaternion_row.label
        assert quaternion_row.train_metrics is not None
        assert complex_row.train_metrics is None


class TestCLITableCommand:
    def test_table_2_fast(self, capsys):
        from repro.cli import main

        code = main(["table", "2", "--entities", "100", "--total-dim", "8",
                     "--epochs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "CPh" in out
        assert "on train" in out

    def test_table_3_fast(self, capsys):
        from repro.cli import main

        code = main(["table", "3", "--entities", "100", "--total-dim", "8",
                     "--epochs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "learned omega snapshots" in out
