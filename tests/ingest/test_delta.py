"""GraphDelta: validation, emptiness, and serialisation round-trips."""

from __future__ import annotations

import pytest

from repro.errors import IngestError
from repro.ingest import GraphDelta

pytestmark = pytest.mark.ingest


class TestConstruction:
    def test_default_is_empty(self):
        delta = GraphDelta()
        assert delta.is_empty
        assert len(delta) == 0

    def test_len_counts_every_mutation(self):
        delta = GraphDelta(
            add_entities=("x",),
            add_relations=("r",),
            add_triples=(("a", "b", "r"),),
            delete_triples=(("c", "d", "s"),),
        )
        assert not delta.is_empty
        assert len(delta) == 4

    def test_non_string_names_rejected(self):
        with pytest.raises(IngestError, match="add_entities"):
            GraphDelta(add_entities=(1,))
        with pytest.raises(IngestError, match="add_relations"):
            GraphDelta(add_relations=(None,))

    def test_malformed_triples_rejected(self):
        with pytest.raises(IngestError, match="add_triples"):
            GraphDelta(add_triples=(("a", "b"),))
        with pytest.raises(IngestError, match="delete_triples"):
            GraphDelta(delete_triples=(("a", "b", 3),))

    def test_duplicate_triples_rejected(self):
        with pytest.raises(IngestError, match="duplicate"):
            GraphDelta(add_triples=(("a", "b", "r"), ("a", "b", "r")))

    def test_add_delete_conflict_rejected(self):
        with pytest.raises(IngestError, match="adds and deletes"):
            GraphDelta(
                add_triples=(("a", "b", "r"),),
                delete_triples=(("a", "b", "r"),),
            )


class TestRoundTrip:
    def _delta(self) -> GraphDelta:
        return GraphDelta(
            add_entities=("zed",),
            add_relations=("knows",),
            add_triples=(("zed", "alice", "knows"), ("alice", "zed", "knows")),
            delete_triples=(("alice", "bob", "likes"),),
        )

    def test_dict_round_trip(self):
        delta = self._delta()
        assert GraphDelta.from_dict(delta.to_dict()) == delta

    def test_to_dict_is_json_compatible(self):
        import json

        payload = self._delta().to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(IngestError, match="unknown delta keys"):
            GraphDelta.from_dict({"add_triples": [], "drop_tables": True})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(IngestError, match="object"):
            GraphDelta.from_dict([("a", "b", "r")])

    def test_file_round_trip(self, tmp_path):
        delta = self._delta()
        path = delta.save(tmp_path / "delta.json")
        assert GraphDelta.load(path) == delta

    def test_load_corrupt_file_raises_ingest_error(self, tmp_path):
        path = tmp_path / "delta.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(IngestError, match="cannot read delta file"):
            GraphDelta.load(path)

    def test_load_missing_file_raises_ingest_error(self, tmp_path):
        with pytest.raises(IngestError, match="cannot read delta file"):
            GraphDelta.load(tmp_path / "absent.json")
