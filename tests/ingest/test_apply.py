"""Transactional delta application and its equivalence to static builds.

The load-bearing contract (ISSUE satellite): for identical *final*
triple sets, the mutation path (``apply_delta``) and the static path
(``KGDataset.from_labeled_triples``) produce **equal datasets** — same
vocabularies in the same id order, same split arrays.  Property-tested
over randomized deltas below.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IngestError
from repro.ingest import GraphDelta, MutableGraph, apply_delta
from repro.kg.graph import FilterIndex, KGDataset

pytestmark = pytest.mark.ingest


def named(dataset: KGDataset, rows: np.ndarray) -> list[tuple[str, str, str]]:
    """Int id rows -> (head, tail, relation) name triples."""
    ents = dataset.entities.to_list()
    rels = dataset.relations.to_list()
    return [(ents[h], ents[t], rels[r]) for h, t, r in np.atleast_2d(rows)]


def rebuild_from_names(dataset: KGDataset, delta: GraphDelta) -> KGDataset:
    """The static-path dataset for *dataset* + *delta*'s final triples."""
    deleted = set(delta.delete_triples)
    train = [row for row in named(dataset, dataset.train.array) if row not in deleted]
    train += list(delta.add_triples)
    return KGDataset.from_labeled_triples(
        train,
        named(dataset, dataset.valid.array),
        named(dataset, dataset.test.array),
        name=dataset.name,
    )


class TestEmptyDelta:
    def test_returns_the_same_object(self, toy_dataset):
        successor, stats = apply_delta(toy_dataset, GraphDelta())
        assert successor is toy_dataset
        assert stats.num_added == 0
        assert stats.num_deleted == 0
        assert len(stats.touched_entities) == 0

    def test_non_delta_rejected(self, toy_dataset):
        with pytest.raises(IngestError, match="GraphDelta"):
            apply_delta(toy_dataset, {"add_triples": []})


class TestApplySemantics:
    def test_add_with_new_entity_matches_static_build(self, toy_dataset):
        delta = GraphDelta(add_triples=(("grace", "alice", "likes"),))
        successor, stats = apply_delta(toy_dataset, delta)
        assert successor == rebuild_from_names(toy_dataset, delta)
        assert stats.new_entities == 1
        assert successor.entities.to_list()[-1] == "grace"
        # the source dataset is untouched
        assert "grace" not in toy_dataset.entities.to_list()

    def test_explicit_vocab_adds_register_before_triples(self, toy_dataset):
        delta = GraphDelta(add_entities=("zeta", "yank"), add_relations=("hates",))
        successor, stats = apply_delta(toy_dataset, delta)
        assert successor.entities.to_list()[-2:] == ["zeta", "yank"]
        assert successor.relations.to_list()[-1] == "hates"
        assert stats.new_entities == 2 and stats.new_relations == 1
        # fresh ids are touched even without any triples
        assert set(stats.touched_entities.tolist()) == {
            successor.entities.index("zeta"),
            successor.entities.index("yank"),
        }

    def test_delete_then_add_together(self, toy_dataset):
        delta = GraphDelta(
            add_triples=(("frank", "carol", "likes"),),
            delete_triples=(("frank", "bob", "likes"),),
        )
        successor, stats = apply_delta(toy_dataset, delta)
        assert stats.num_added == 1 and stats.num_deleted == 1
        assert len(successor.train) == len(toy_dataset.train)
        assert successor == rebuild_from_names(toy_dataset, delta)

    def test_touched_entities_are_endpoints_plus_fresh_ids(self, toy_dataset):
        delta = GraphDelta(
            add_triples=(("grace", "bob", "likes"),),
            delete_triples=(("carol", "dave", "likes"),),
        )
        successor, stats = apply_delta(toy_dataset, delta)
        expected = {
            successor.entities.index(name)
            for name in ("grace", "bob", "carol", "dave")
        }
        assert set(stats.touched_entities.tolist()) == expected
        assert list(stats.touched_entities) == sorted(stats.touched_entities)


class TestTransactionality:
    """A failing delta must leave the input dataset untouched."""

    def test_delete_of_non_train_triple_refused(self, toy_dataset):
        before = len(toy_dataset.train)
        # (dave, eve, likes) lives in the *valid* split
        with pytest.raises(IngestError, match="not a training triple"):
            apply_delta(
                toy_dataset, GraphDelta(delete_triples=(("dave", "eve", "likes"),))
            )
        assert len(toy_dataset.train) == before

    def test_delete_of_unknown_name_refused(self, toy_dataset):
        with pytest.raises(IngestError, match="cannot delete"):
            apply_delta(
                toy_dataset, GraphDelta(delete_triples=(("ghost", "bob", "likes"),))
            )

    def test_add_of_existing_triple_refused(self, toy_dataset):
        num_entities = toy_dataset.num_entities
        with pytest.raises(IngestError, match="already contains"):
            apply_delta(
                toy_dataset,
                GraphDelta(
                    add_triples=(
                        ("grace", "bob", "likes"),  # fine on its own
                        ("alice", "bob", "likes"),  # train duplicate
                    )
                ),
            )
        # the partial vocab growth from the first triple did not leak
        assert toy_dataset.num_entities == num_entities

    def test_duplicate_vocab_add_refused(self, toy_dataset):
        with pytest.raises(IngestError, match="vocabulary growth failed"):
            apply_delta(toy_dataset, GraphDelta(add_entities=("alice",)))

    def test_emptying_train_refused(self, toy_dataset):
        rows = tuple(named(toy_dataset, toy_dataset.train.array))
        with pytest.raises(IngestError, match="empty"):
            apply_delta(toy_dataset, GraphDelta(delete_triples=rows))


def random_delta(
    dataset: KGDataset, rng: np.random.Generator, tag: str
) -> GraphDelta:
    """A randomized delta whose application is order-compatible with a
    from-scratch rebuild: deletions only hit train rows whose names all
    first-occur in an earlier *surviving* row (so vocabulary id order is
    preserved), additions mix existing and brand-new names."""
    train_names = named(dataset, dataset.train.array)
    seen: set[str] = set()
    deletions = []
    survivors = []
    for h, t, r in train_names:
        deletable = h in seen and t in seen and r in seen
        if deletable and rng.random() < 0.25:
            deletions.append((h, t, r))
        else:
            survivors.append((h, t, r))
            seen.update((h, t, r))

    known = set(train_names)
    for split in ("valid", "test"):
        known |= set(named(dataset, dataset.splits[split].array))
    entity_pool = dataset.entities.to_list() + [f"{tag}_n{i}" for i in range(3)]
    relation_pool = dataset.relations.to_list()
    if rng.random() < 0.5:
        relation_pool = relation_pool + [f"{tag}_rel"]
    additions = []
    added = set()
    for _ in range(12):
        h, t = rng.choice(len(entity_pool), size=2, replace=False)
        row = (
            entity_pool[h],
            entity_pool[t],
            relation_pool[int(rng.integers(len(relation_pool)))],
        )
        if row not in known and row not in added:
            additions.append(row)
            added.add(row)
    return GraphDelta(add_triples=tuple(additions), delete_triples=tuple(deletions))


def make_property_dataset(rng: np.random.Generator) -> KGDataset:
    """A random dataset whose train split covers every name (so valid/
    test introduce no vocabulary of their own and id order is purely a
    function of the train scan)."""
    entities = [f"e{i}" for i in range(24)]
    relations = [f"r{i}" for i in range(4)]
    rows: list[tuple[str, str, str]] = []
    seen: set[tuple[str, str, str]] = set()
    # a covering chain first, so every entity/relation occurs in train
    for i in range(len(entities) - 1):
        row = (entities[i], entities[i + 1], relations[i % len(relations)])
        rows.append(row)
        seen.add(row)
    while len(rows) < 60:
        h, t = rng.choice(len(entities), size=2, replace=False)
        row = (entities[h], entities[t], relations[int(rng.integers(len(relations)))])
        if row not in seen:
            rows.append(row)
            seen.add(row)
    holdout = []
    while len(holdout) < 6:
        h, t = rng.choice(len(entities), size=2, replace=False)
        row = (entities[h], entities[t], relations[int(rng.integers(len(relations)))])
        if row not in seen:
            holdout.append(row)
            seen.add(row)
    return KGDataset.from_labeled_triples(
        rows, holdout[:3], holdout[3:], name="prop"
    )


class TestMutationStaticEquivalence:
    """apply_delta(D, δ) == from_labeled_triples(final names of D + δ)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_deltas_match_static_path(self, seed):
        rng = np.random.default_rng(seed)
        dataset = make_property_dataset(rng)
        for step in range(3):
            delta = random_delta(dataset, rng, tag=f"s{seed}b{step}")
            if delta.is_empty:
                continue
            rebuilt = rebuild_from_names(dataset, delta)
            dataset, _ = apply_delta(dataset, delta)
            assert dataset == rebuilt, f"divergence at seed={seed} step={step}"

    def test_chained_deltas_on_toy_dataset(self, toy_dataset):
        dataset = toy_dataset
        for delta in (
            GraphDelta(add_triples=(("grace", "alice", "likes"),)),
            GraphDelta(
                add_triples=(("grace", "dave", "married_to"),),
                delete_triples=(("eve", "frank", "likes"),),
            ),
        ):
            rebuilt = rebuild_from_names(dataset, delta)
            dataset, _ = apply_delta(dataset, delta)
            assert dataset == rebuilt


def assert_same_index(actual: FilterIndex, expected: FilterIndex) -> None:
    assert actual.num_entities == expected.num_entities
    assert actual.num_relations == expected.num_relations
    assert set(actual._tails) == set(expected._tails)
    assert set(actual._heads) == set(expected._heads)
    for key in expected._tails:
        np.testing.assert_array_equal(actual._tails[key], expected._tails[key])
    for key in expected._heads:
        np.testing.assert_array_equal(actual._heads[key], expected._heads[key])


class TestIncrementalFilterIndex:
    def test_successor_index_matches_from_scratch_build(self, toy_dataset):
        _ = toy_dataset.filter_index  # force the one construction site
        delta = GraphDelta(
            add_triples=(("grace", "alice", "likes"), ("bob", "dave", "married_to")),
            delete_triples=(("alice", "bob", "likes"),),
        )
        successor, _ = apply_delta(toy_dataset, delta)
        # already derived incrementally during apply — no lazy build left
        assert successor._filter_index is not None
        assert_same_index(
            successor._filter_index, FilterIndex(successor.all_triples())
        )

    def test_no_index_on_source_stays_lazy(self, toy_dataset):
        dataset = KGDataset.from_labeled_triples(
            named(toy_dataset, toy_dataset.train.array),
            named(toy_dataset, toy_dataset.valid.array),
            named(toy_dataset, toy_dataset.test.array),
        )
        assert dataset._filter_index is None
        successor, _ = apply_delta(
            dataset, GraphDelta(add_triples=(("grace", "alice", "likes"),))
        )
        assert successor._filter_index is None  # built lazily on demand

    def test_source_index_is_never_mutated(self, toy_dataset):
        source_index = toy_dataset.filter_index
        snapshot = {k: v.copy() for k, v in source_index._tails.items()}
        delta = GraphDelta(delete_triples=(("alice", "bob", "likes"),))
        apply_delta(toy_dataset, delta)
        assert set(source_index._tails) == set(snapshot)
        for key, values in snapshot.items():
            np.testing.assert_array_equal(source_index._tails[key], values)


class TestMutableGraph:
    def test_version_advances_only_on_applied_deltas(self, toy_dataset):
        graph = MutableGraph(toy_dataset)
        assert graph.graph_version == 0
        graph.apply(GraphDelta())  # empty: committed no-op
        assert graph.graph_version == 0
        assert graph.dataset is toy_dataset
        stats = graph.apply(GraphDelta(add_triples=(("grace", "alice", "likes"),)))
        assert graph.graph_version == 1
        assert stats.num_added == 1
        assert graph.dataset is not toy_dataset

    def test_failed_delta_moves_nothing(self, toy_dataset):
        graph = MutableGraph(toy_dataset, graph_version=5)
        with pytest.raises(IngestError):
            graph.apply(GraphDelta(delete_triples=(("ghost", "bob", "likes"),)))
        assert graph.graph_version == 5
        assert graph.dataset is toy_dataset

    def test_negative_version_rejected(self, toy_dataset):
        with pytest.raises(IngestError, match=">= 0"):
            MutableGraph(toy_dataset, graph_version=-1)
