"""Hot ingestion through the serving daemon: ``apply_delta`` + versions.

Contract (see :meth:`repro.serving.server.PredictionServer.apply_delta`):
the full ingest pipeline runs under the swap lock, so no response is
computed against a half-applied delta; applied deltas advance both the
generation and the monotonically increasing ``graph_version`` (echoed on
every response); empty deltas are committed no-ops.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.models import make_complex
from repro.errors import ServingError
from repro.index.ivf import IVFIndex
from repro.ingest import GraphDelta
from repro.serving import LinkPredictor, PredictionServer
from repro.serving.server import _handle_message

pytestmark = pytest.mark.ingest

BUDGET = 16


@pytest.fixture()
def dataset(tiny_dataset):
    return tiny_dataset


@pytest.fixture()
def model(dataset):
    return make_complex(
        dataset.num_entities, dataset.num_relations, BUDGET, np.random.default_rng(2)
    )


def make_delta(dataset, tag: str = "new") -> GraphDelta:
    names = dataset.entities.to_list()
    rels = dataset.relations.to_list()
    return GraphDelta(
        add_triples=(
            (f"{tag}_entity", names[0], rels[0]),
            (names[1], f"{tag}_entity", rels[0]),
        )
    )


class TestApplyDelta:
    def test_applied_delta_advances_both_versions(self, model, dataset):
        delta = make_delta(dataset)

        async def main():
            server = PredictionServer(LinkPredictor(model, dataset))
            async with server:
                before = await server.top_k_tails(0, 0, k=5)
                receipt = await server.apply_delta(delta, epochs=1, seed=0)
                after = await server.top_k_tails(0, 0, k=5)
                health = server.health_dict()
                stats = server.stats_dict()
            return before, receipt, after, health, stats

        before, receipt, after, health, stats = asyncio.run(main())
        assert before.graph_version == 0
        assert receipt["applied"] is True
        assert receipt["graph_version"] == 1
        assert receipt["generation"] == before.generation + 1
        assert after.graph_version == 1
        assert after.generation == receipt["generation"]
        assert health["graph_version"] == 1
        assert stats["graph_version"] == 1
        assert stats["deltas_applied"] == 1

    def test_new_entity_is_immediately_queryable(self, model, dataset):
        delta = make_delta(dataset)

        async def main():
            server = PredictionServer(LinkPredictor(model, dataset))
            async with server:
                await server.apply_delta(delta, epochs=1)
                new_id = dataset.num_entities  # first fresh id
                return await server.top_k_tails(new_id, 0, k=5)

        served = asyncio.run(main())
        assert len(served.ids) == 5
        assert served.graph_version == 1

    def test_empty_delta_is_a_committed_noop(self, model, dataset):
        async def main():
            server = PredictionServer(LinkPredictor(model, dataset))
            async with server:
                receipt = await server.apply_delta(GraphDelta())
                return receipt, server.stats_dict()

        receipt, stats = asyncio.run(main())
        assert receipt["applied"] is False
        assert receipt["graph_version"] == 0
        assert stats["deltas_applied"] == 0

    def test_chained_deltas_monotonic_versions(self, model, dataset):
        async def main():
            server = PredictionServer(LinkPredictor(model, dataset))
            versions = []
            async with server:
                for tag in ("a", "b", "c"):
                    receipt = await server.apply_delta(
                        make_delta(dataset if tag == "a" else server._active.predictor.dataset, tag),
                        epochs=0,
                    )
                    versions.append(receipt["graph_version"])
            return versions

        assert asyncio.run(main()) == [1, 2, 3]

    def test_indexed_deployment_splices_without_invalidating(self, model, dataset):
        index = IVFIndex(model, seed=0, spill=2)
        index.build(relations=np.arange(dataset.num_relations), sides=("tail",))

        async def main():
            predictor = LinkPredictor(model, dataset, index=index)
            server = PredictionServer(predictor)
            async with server:
                receipt = await server.apply_delta(
                    make_delta(dataset), epochs=1, drift_threshold=1.0
                )
                served = await server.top_k_tails(dataset.num_entities, 0, k=5)
            return receipt, served

        receipt, served = asyncio.run(main())
        assert receipt["index"]["rebuild_triggered"] is False
        assert index.rebuilds == 0
        assert len(served.ids) == 5

    def test_bad_delta_type_rejected(self, model, dataset):
        async def main():
            server = PredictionServer(LinkPredictor(model, dataset))
            async with server:
                await server.apply_delta(["not", "a", "delta"])

        with pytest.raises(ServingError, match="GraphDelta"):
            asyncio.run(main())

    def test_no_deployment_rejected(self):
        async def main():
            server = PredictionServer()
            async with server:
                await server.apply_delta(GraphDelta())

        with pytest.raises(ServingError, match="no model deployed"):
            asyncio.run(main())


class TestWireOp:
    def test_wire_apply_delta_round_trip(self, model, dataset):
        delta = make_delta(dataset)

        async def main():
            server = PredictionServer(LinkPredictor(model, dataset))
            async with server:
                reply = await _handle_message(
                    server,
                    {
                        "op": "apply_delta",
                        "delta": delta.to_dict(),
                        "ingest": {"epochs": 1, "seed": 4},
                    },
                    None,
                )
                query = await _handle_message(
                    server, {"op": "top_k", "head": 0, "relation": 0, "k": 3}, None
                )
            return reply, query

        reply, query = asyncio.run(main())
        assert reply["ingest"]["applied"] is True
        assert reply["ingest"]["graph_version"] == 1
        assert query["graph_version"] == 1  # echoed on every response

    def test_wire_rejects_unknown_ingest_knobs(self, model, dataset):
        async def main():
            server = PredictionServer(LinkPredictor(model, dataset))
            async with server:
                await _handle_message(
                    server,
                    {
                        "op": "apply_delta",
                        "delta": GraphDelta().to_dict(),
                        "ingest": {"reactor": "warp"},
                    },
                    None,
                )

        with pytest.raises(ServingError, match="unknown ingest knobs"):
            asyncio.run(main())

    def test_wire_requires_delta_object(self, model, dataset):
        async def main():
            server = PredictionServer(LinkPredictor(model, dataset))
            async with server:
                await _handle_message(server, {"op": "apply_delta"}, None)

        with pytest.raises(ServingError, match="needs a delta object"):
            asyncio.run(main())
