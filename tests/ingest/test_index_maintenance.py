"""Online IVF index maintenance: splice dirty entities, rebuild on drift.

Contract (see :meth:`repro.index.ivf.IVFIndex.update_entities`): after a
delta moves or creates entity rows, only those rows are re-folded and
re-assigned against *frozen* centroids; untouched entities' cell
assignments are preserved exactly, candidate retrieval covers the new
ids, and when assignment drift exceeds the caller's threshold the index
abandons the splice for a from-scratch rebuild.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import make_complex
from repro.errors import ServingError
from repro.index.ivf import IVFIndex
from repro.ingest import GraphDelta, ingest_delta

pytestmark = pytest.mark.ingest

BUDGET = 16


@pytest.fixture()
def model(tiny_dataset):
    return make_complex(
        tiny_dataset.num_entities,
        tiny_dataset.num_relations,
        BUDGET,
        np.random.default_rng(5),
    )


@pytest.fixture()
def index(model, tiny_dataset):
    ivf = IVFIndex(model, seed=0, spill=2)
    ivf.build(
        relations=np.arange(tiny_dataset.num_relations), sides=("tail", "head")
    )
    return ivf


def all_candidates(index, relation: int, side: str, anchors) -> list[set]:
    anchors = np.asarray(anchors, dtype=np.int64)
    relations = np.full(len(anchors), relation, dtype=np.int64)
    batch = index.candidate_lists(anchors, relations, side)
    assert not batch.covers_all
    return [set(row.tolist()) for row in batch.rows]


class TestNoopUpdates:
    def test_empty_dirty_set_resyncs_version(self, index, model):
        model.grow(model.num_entities)  # no-op growth, no version bump
        report = index.update_entities(np.empty(0, dtype=np.int64))
        assert report.partitions_updated == 0
        assert report.entities_updated == 0
        assert not report.rebuild_triggered
        assert index.rebuilds == 0

    def test_out_of_range_dirty_ids_rejected(self, index, model):
        with pytest.raises(ServingError, match="out of range"):
            index.update_entities(np.array([model.num_entities], dtype=np.int64))

    def test_bad_threshold_rejected(self, index):
        with pytest.raises(ServingError, match="drift_threshold"):
            index.update_entities(np.array([0], dtype=np.int64), drift_threshold=0.0)
        with pytest.raises(ServingError, match="drift_threshold"):
            index.update_entities(np.array([0], dtype=np.int64), drift_threshold=1.5)


class TestSplice:
    def test_unmoved_entities_report_zero_drift(self, index, model):
        dirty = np.arange(0, 20, dtype=np.int64)
        model._bump_scoring_version()  # pretend training happened
        report = index.update_entities(dirty)
        assert report.drift == 0.0
        assert not report.rebuild_triggered
        assert report.entities_updated == 20
        assert report.partitions_updated == len(index._partitions)

    def test_splice_preserves_untouched_assignments(self, index, model, tiny_dataset):
        anchors = np.arange(model.num_entities, dtype=np.int64)
        before = all_candidates(index, 0, "tail", anchors)
        dirty = np.array([1, 3, 5], dtype=np.int64)
        index.update_entities(dirty, drift_threshold=1.0)
        after = all_candidates(index, 0, "tail", anchors)
        # Candidate sets may only differ in membership of dirty entities.
        for row_before, row_after in zip(before, after):
            assert row_before - set(dirty.tolist()) == row_after - set(dirty.tolist())

    def test_new_entities_become_retrievable(self, index, model, tiny_dataset):
        old_ne = model.num_entities
        model.grow(old_ne + 5, rng=np.random.default_rng(7))
        dirty = np.arange(old_ne, old_ne + 5, dtype=np.int64)
        report = index.update_entities(dirty, drift_threshold=1.0)
        assert report.new_entities == 5
        assert not report.rebuild_triggered
        # every new id is a member of some cell in every partition
        union = set()
        for sets in (all_candidates(index, r, "tail", np.arange(model.num_entities))
                     for r in range(tiny_dataset.num_relations)):
            for member_set in sets:
                union |= member_set
        assert set(dirty.tolist()) <= union

    def test_splice_resyncs_version_without_counting_a_rebuild(self, index, model):
        model._bump_scoring_version()
        assert index.update_entities(
            np.array([0], dtype=np.int64), drift_threshold=1.0
        ).rebuild_triggered is False
        assert index.rebuilds == 0
        index.ensure_fresh()  # no StaleIndexError: version adopted


class TestDriftRebuild:
    def test_large_movement_triggers_rebuild(self, index, model):
        """Scrambling many folded rows beyond recognition must push
        assignment drift over a tight threshold and drop the splice."""
        rng = np.random.default_rng(13)
        dirty = np.arange(0, model.num_entities // 2, dtype=np.int64)
        scrambled = model.entity_embeddings.copy()
        scrambled[dirty] = rng.normal(size=scrambled[dirty].shape) * 50.0
        model.entity_embeddings = scrambled
        model._bump_scoring_version()
        report = index.update_entities(dirty, drift_threshold=1e-6)
        assert report.drift > 0.0
        assert report.rebuild_triggered
        assert index.rebuilds == 1  # invalidate() counted it
        # partitions were dropped for lazy from-scratch rebuild
        assert not index._partitions

    def test_ingest_delta_threads_the_threshold_through(
        self, index, model, tiny_dataset
    ):
        names = tiny_dataset.entities.to_list()
        rels = tiny_dataset.relations.to_list()
        delta = GraphDelta(
            add_triples=(("fresh_entity", names[0], rels[0]),)
        )
        outcome = ingest_delta(
            model, tiny_dataset, delta, index=index, epochs=1, drift_threshold=1.0
        )
        assert outcome.applied
        assert outcome.index_update is not None
        assert not outcome.index_update.rebuild_triggered
        receipt = outcome.to_dict()
        assert receipt["index"]["rebuild_triggered"] is False
