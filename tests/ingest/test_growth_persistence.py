"""Embedding-table growth against memmap checkpoints (MemStore).

Satellite contract: growing an entity table must re-save crash-safely,
keep per-array sha256 integrity, and leave all pre-growth rows
bit-identical after a reload — including when the grown model itself
started life as a read-only memmapped checkpoint.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.memstore import MemStore, is_mapped
from repro.core.models import make_complex
from repro.core.serialization import CHECKPOINT_STORE_DIR, load_model, save_model
from repro.errors import CorruptArtifactError
from repro.ingest import GraphDelta, ingest_delta

pytestmark = pytest.mark.ingest

BUDGET = 8


@pytest.fixture()
def model(toy_dataset):
    return make_complex(
        toy_dataset.num_entities,
        toy_dataset.num_relations,
        BUDGET,
        np.random.default_rng(11),
    )


def test_grown_memmap_checkpoint_round_trips(model, tmp_path):
    first = tmp_path / "ckpt"
    save_model(model, first, memmap=True)
    loaded = load_model(first)  # read-only memmapped tables
    assert is_mapped(loaded.entity_embeddings)
    assert not loaded.entity_embeddings.flags.writeable

    old_ne = loaded.num_entities
    before = np.array(loaded.entity_embeddings)
    added = loaded.grow(old_ne + 4, rng=np.random.default_rng(0))
    assert added == (4, 0)

    hashes = save_model(loaded, first, memmap=True)  # re-save in place
    assert f"{CHECKPOINT_STORE_DIR}/entity_embeddings.npy" in hashes

    reloaded = load_model(first)
    assert reloaded.num_entities == old_ne + 4
    np.testing.assert_array_equal(reloaded.entity_embeddings[:old_ne], before)
    np.testing.assert_array_equal(
        reloaded.entity_embeddings, loaded.entity_embeddings
    )


def test_resave_keeps_per_array_integrity_hashes(model, tmp_path):
    directory = tmp_path / "ckpt"
    save_model(model, directory, memmap=True)
    loaded = load_model(directory)
    loaded.grow(loaded.num_entities + 2, rng=np.random.default_rng(1))
    save_model(loaded, directory, memmap=True)

    store = MemStore.open(directory / CHECKPOINT_STORE_DIR)
    store.verify_all()  # every payload matches its recorded sha256
    assert set(store.names()) >= {"entity_embeddings", "relation_embeddings", "omega"}


def test_corrupted_grown_table_detected_at_load(model, tmp_path):
    directory = tmp_path / "ckpt"
    save_model(model, directory, memmap=True)
    loaded = load_model(directory)
    loaded.grow(loaded.num_entities + 2, rng=np.random.default_rng(1))
    save_model(loaded, directory, memmap=True)

    payload_path = directory / CHECKPOINT_STORE_DIR / "entity_embeddings.npy"
    raw = bytearray(payload_path.read_bytes())
    raw[-1] ^= 0xFF  # flip one payload bit
    payload_path.write_bytes(bytes(raw))
    with pytest.raises(CorruptArtifactError):
        load_model(directory)


def test_ingest_on_memmapped_checkpoint_preserves_unreached_rows(
    toy_dataset, model, tmp_path
):
    """The full loop: memmap checkpoint -> writable load -> ingest_delta
    (growth + fine-tune) -> re-save -> reload.  Rows the delta never
    touched must survive the whole trip bit-identically."""
    directory = tmp_path / "ckpt"
    save_model(model, directory, memmap=True)
    serving = load_model(directory, memmap=False)  # writable for training

    delta = GraphDelta(add_triples=(("grace", "alice", "likes"),))
    outcome = ingest_delta(serving, toy_dataset, delta, epochs=2, seed=3)
    assert outcome.applied

    save_model(serving, directory, memmap=True)
    reloaded = load_model(directory)
    original = np.array(model.entity_embeddings)
    touched = set(outcome.stats.touched_entities.tolist())
    untouched = [
        i for i in range(toy_dataset.num_entities) if i not in touched
    ]
    np.testing.assert_array_equal(
        reloaded.entity_embeddings[untouched], original[untouched]
    )
    assert reloaded.num_entities == toy_dataset.num_entities + 1


def test_interrupted_resave_is_detected_and_healed_by_rerun(
    model, tmp_path, monkeypatch
):
    """Crash-safety: a rewrite that dies before MemStore.flush commits
    ``store.json`` must never load silently wrong data.  The grown
    entity payload landed but the meta still records the pre-growth
    sha256 — the mismatch is *detected* at load, and re-running the
    save heals the checkpoint."""
    directory = tmp_path / "ckpt"
    save_model(model, directory, memmap=True)

    grown = load_model(directory, memmap=False)
    grown_ne = grown.num_entities + 3
    grown.grow(grown_ne, rng=np.random.default_rng(2))
    expected = grown.entity_embeddings.copy()

    boom = RuntimeError("simulated crash before store.json commit")
    monkeypatch.setattr(MemStore, "flush", lambda self: (_ for _ in ()).throw(boom))
    with pytest.raises(RuntimeError, match="simulated crash"):
        save_model(grown, directory, memmap=True)
    monkeypatch.undo()

    with pytest.raises(CorruptArtifactError):
        load_model(directory)

    save_model(grown, directory, memmap=True)  # heal by re-run
    healed = load_model(directory)
    assert healed.num_entities == grown_ne
    np.testing.assert_array_equal(healed.entity_embeddings, expected)
