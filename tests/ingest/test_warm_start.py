"""Warm-start delta training: in-place table growth + touched-row tuning.

The economic property the whole ingestion path rests on: after a delta,
only the *touched* entity rows move — every other entity embedding is
bit-identical — and growth never disturbs existing rows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import make_complex
from repro.errors import IngestError, ModelError
from repro.ingest import GraphDelta, fine_tune_delta, grow_model, ingest_delta
from repro.training.trainer import TrainingConfig

pytestmark = pytest.mark.ingest

BUDGET = 8


@pytest.fixture()
def model(toy_dataset):
    return make_complex(
        toy_dataset.num_entities,
        toy_dataset.num_relations,
        BUDGET,
        np.random.default_rng(3),
    )


class TestGrow:
    def test_existing_rows_carried_bit_identically(self, model):
        before_e = model.entity_embeddings.copy()
        before_r = model.relation_embeddings.copy()
        old_ne, old_nr = model.num_entities, model.num_relations
        added = model.grow(old_ne + 3, old_nr + 1, rng=np.random.default_rng(0))
        assert added == (3, 1)
        assert model.num_entities == old_ne + 3
        assert model.num_relations == old_nr + 1
        np.testing.assert_array_equal(model.entity_embeddings[:old_ne], before_e)
        np.testing.assert_array_equal(model.relation_embeddings[:old_nr], before_r)

    def test_growth_bumps_scoring_version(self, model):
        version = model.scoring_version
        model.grow(model.num_entities + 1)
        assert model.scoring_version > version

    def test_zero_growth_is_a_versionless_noop(self, model):
        version = model.scoring_version
        table = model.entity_embeddings
        assert model.grow() == (0, 0)
        assert model.grow(model.num_entities, model.num_relations) == (0, 0)
        assert model.scoring_version == version
        assert model.entity_embeddings is table

    def test_shrink_refused(self, model):
        with pytest.raises(ModelError, match="never shrink"):
            model.grow(model.num_entities - 1)
        with pytest.raises(ModelError, match="never shrink"):
            model.grow(num_relations=model.num_relations - 1)

    def test_growth_works_on_read_only_tables(self, model):
        """A memmapped checkpoint loads read-only; growth must still work
        (fresh writable arrays, sources untouched)."""
        model.entity_embeddings.flags.writeable = False
        model.relation_embeddings.flags.writeable = False
        old = model.num_entities
        model.grow(old + 2)
        assert model.entity_embeddings.flags.writeable
        assert model.num_entities == old + 2

    def test_new_rows_respect_initializer(self, model):
        old = model.num_entities
        model.grow(old + 4, rng=np.random.default_rng(1), initializer="unit_normalized")
        fresh = model.entity_embeddings[old:]
        norms = np.linalg.norm(fresh, axis=-1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-12)

    def test_grow_model_helper_rejects_foreign_models(self):
        with pytest.raises(IngestError, match="MultiEmbeddingModel"):
            grow_model(object(), 10, 3)


class TestFineTuneDelta:
    def _config(self, **overrides) -> TrainingConfig:
        base = dict(
            epochs=3,
            batch_size=8,
            learning_rate=0.05,
            optimizer="adagrad",
            num_negatives=2,
            seed=0,
            validate_every=10**9,
            patience=10**9,
        )
        base.update(overrides)
        return TrainingConfig(**base)

    def test_untouched_rows_stay_bit_identical(self, model, toy_dataset):
        touched = np.array(
            [toy_dataset.entities.index("alice"), toy_dataset.entities.index("bob"),
             toy_dataset.entities.index("eve")],
            dtype=np.int64,
        )
        before = model.entity_embeddings.copy()
        report = fine_tune_delta(model, toy_dataset, touched, self._config())
        assert report.steps > 0 and report.triples > 0
        untouched = np.setdiff1d(np.arange(model.num_entities), touched)
        np.testing.assert_array_equal(
            model.entity_embeddings[untouched], before[untouched]
        )
        # and the pass actually trained: some touched row moved
        assert not np.array_equal(model.entity_embeddings[touched], before[touched])

    def test_no_induced_triples_is_a_noop(self, model, toy_dataset):
        # frank only relates to bob/eve; alone he induces no triple
        touched = np.array([toy_dataset.entities.index("frank")], dtype=np.int64)
        before = model.entity_embeddings.copy()
        report = fine_tune_delta(model, toy_dataset, touched, self._config())
        assert report.steps == 0 and report.triples == 0
        np.testing.assert_array_equal(model.entity_embeddings, before)

    def test_empty_touched_set_is_a_noop(self, model, toy_dataset):
        report = fine_tune_delta(
            model, toy_dataset, np.empty(0, dtype=np.int64), self._config()
        )
        assert report.steps == 0

    def test_out_of_range_ids_rejected(self, model, toy_dataset):
        with pytest.raises(IngestError, match="out of range"):
            fine_tune_delta(
                model,
                toy_dataset,
                np.array([model.num_entities], dtype=np.int64),
                self._config(),
            )


class TestIngestDelta:
    def test_end_to_end_outcome(self, model, toy_dataset):
        delta = GraphDelta(
            add_triples=(("grace", "alice", "likes"), ("grace", "dave", "likes"))
        )
        outcome = ingest_delta(model, toy_dataset, delta, epochs=2, seed=1)
        assert outcome.applied
        assert outcome.dataset.num_entities == toy_dataset.num_entities + 1
        assert model.num_entities == outcome.dataset.num_entities
        assert outcome.warm.grew_entities == 1
        receipt = outcome.to_dict()
        for key in ("applied", "seconds", "num_added", "warm"):
            assert key in receipt

    def test_empty_delta_touches_nothing(self, model, toy_dataset):
        version = model.scoring_version
        outcome = ingest_delta(model, toy_dataset, GraphDelta())
        assert not outcome.applied
        assert outcome.dataset is toy_dataset
        assert model.scoring_version == version

    def test_epochs_zero_grows_without_tuning(self, model, toy_dataset):
        old_ne = model.num_entities
        before = model.entity_embeddings.copy()
        delta = GraphDelta(add_triples=(("grace", "alice", "likes"),))
        outcome = ingest_delta(model, toy_dataset, delta, epochs=0)
        assert outcome.applied
        assert model.num_entities == old_ne + 1
        assert outcome.warm.steps == 0
        np.testing.assert_array_equal(model.entity_embeddings[:old_ne], before)

    def test_index_without_update_hook_is_invalidated(self, model, toy_dataset):
        class Dummy:
            invalidated = False

            def invalidate(self):
                self.invalidated = True

        dummy = Dummy()
        delta = GraphDelta(add_triples=(("grace", "alice", "likes"),))
        outcome = ingest_delta(model, toy_dataset, delta, index=dummy, epochs=0)
        assert dummy.invalidated
        assert outcome.index_update is None
