"""The ``repro ingest`` CLI command: delta file -> coherent run directory."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.serialization import load_model
from repro.ingest import GraphDelta
from repro.pipeline.config import (
    DatasetSection,
    IndexSection,
    ModelSection,
    RunConfig,
    TrainingSection,
)
from repro.pipeline.runner import load_run, run_pipeline

pytestmark = [pytest.mark.ingest, pytest.mark.pipeline]


@pytest.fixture(scope="module")
def trained_run(tmp_path_factory):
    config = RunConfig(
        dataset=DatasetSection(
            generator="synthetic_wn18",
            params={"num_entities": 120, "num_clusters": 6, "seed": 3},
        ),
        model=ModelSection(name="complex", total_dim=8),
        training=TrainingSection(epochs=2, batch_size=256),
        index=IndexSection(kind="ivf", nlist=8, nprobe=8),
    )
    path = tmp_path_factory.mktemp("ingest_run") / "run"
    run_pipeline(config, run_dir=path)
    return path


def write_delta(run_dir, tmp_path, tag="fresh") -> tuple:
    dataset = load_run(run_dir).build_dataset()
    names = dataset.entities.to_list()
    rels = dataset.relations.to_list()
    delta = GraphDelta(
        add_triples=(
            (f"{tag}_entity", names[0], rels[0]),
            (names[1], f"{tag}_entity", rels[1 % len(rels)]),
        )
    )
    path = delta.save(tmp_path / f"delta_{tag}.json")
    return dataset, delta, path


class TestIngestCommand:
    def test_dry_run_leaves_run_dir_untouched(self, trained_run, tmp_path, capsys):
        dataset, _, delta_path = write_delta(trained_run, tmp_path, tag="dry")
        config_before = (trained_run / "config.json").read_text(encoding="utf-8")
        assert main(["ingest", str(trained_run), str(delta_path), "--dry-run",
                     "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "dry run" in out
        assert '"applied": true' in out
        assert (trained_run / "config.json").read_text(encoding="utf-8") == config_before
        model = load_model(trained_run / "checkpoint")
        assert model.num_entities == dataset.num_entities  # not persisted

    def test_ingest_persists_a_coherent_run_dir(self, trained_run, tmp_path, capsys):
        dataset, delta, delta_path = write_delta(trained_run, tmp_path, tag="live")
        assert main(["ingest", str(trained_run), str(delta_path),
                     "--epochs", "1", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert '"applied": true' in out
        assert "updated" in out

        # checkpoint grew and reloads cleanly
        model = load_model(trained_run / "checkpoint")
        assert model.num_entities == dataset.num_entities + 1

        # the config now points at the persisted directory dataset, the
        # manifest re-verifies, and the dataset round-trips with the
        # ingested triples present
        loaded = load_run(trained_run)  # manifest check happens here
        assert loaded.config.dataset.generator == "directory"
        successor = loaded.build_dataset()
        assert successor.num_entities == dataset.num_entities + 1
        assert "live_entity" in successor.entities.to_list()
        assert len(successor.train) == len(dataset.train) + len(delta.add_triples)

        # the index directory was re-persisted (incrementally or rebuilt)
        assert (trained_run / "index").exists()

    def test_empty_delta_is_reported_and_skipped(self, trained_run, tmp_path, capsys):
        delta_path = GraphDelta().save(tmp_path / "empty.json")
        config_before = (trained_run / "config.json").read_text(encoding="utf-8")
        assert main(["ingest", str(trained_run), str(delta_path)]) == 0
        out = capsys.readouterr().out
        assert '"applied": false' in out
        assert "empty delta" in out
        assert (trained_run / "config.json").read_text(encoding="utf-8") == config_before

    def test_missing_delta_file_fails_cleanly(self, trained_run, tmp_path, capsys):
        assert main(["ingest", str(trained_run), str(tmp_path / "absent.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_receipt_is_parseable_json(self, trained_run, tmp_path, capsys):
        _, _, delta_path = write_delta(trained_run, tmp_path, tag="json")
        assert main(["ingest", str(trained_run), str(delta_path), "--dry-run"]) == 0
        out = capsys.readouterr().out
        receipt = json.loads(out[: out.rindex("}") + 1])
        for key in ("applied", "seconds", "num_added", "warm"):
            assert key in receipt
