"""Incremental FilterIndex maintenance: per-key edits ≡ full rebuild.

Plus the architectural invariant the satellite demands: the lazy
``KGDataset.filter_index`` property is the *only* place in the library
where a FilterIndex is constructed from scratch — every mutating path
(delta ingestion, inverse augmentation) derives the successor index via
``copy`` + ``add_triples``/``remove_triples``.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.kg.augment import augment_with_inverses
from repro.kg.graph import FilterIndex, KGDataset

pytestmark = pytest.mark.ingest

SRC_ROOT = Path(__file__).parent.parent.parent / "src" / "repro"


def assert_same_index(actual: FilterIndex, expected: FilterIndex) -> None:
    assert actual.num_entities == expected.num_entities
    assert actual.num_relations == expected.num_relations
    assert set(actual._tails) == set(expected._tails)
    assert set(actual._heads) == set(expected._heads)
    for key in expected._tails:
        np.testing.assert_array_equal(actual._tails[key], expected._tails[key])
    for key in expected._heads:
        np.testing.assert_array_equal(actual._heads[key], expected._heads[key])


class TestIncrementalEqualsRebuilt:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_edit_sequences(self, seed, tiny_dataset):
        """Apply random insert/remove batches both incrementally and by
        rebuilding; the two indexes must be structurally identical."""
        rng = np.random.default_rng(seed)
        ne, nr = tiny_dataset.num_entities, tiny_dataset.num_relations
        rows = tiny_dataset.all_triples().array.copy()
        incremental = FilterIndex(tiny_dataset.all_triples())

        current = {tuple(int(v) for v in row) for row in rows}
        for _ in range(4):
            removable = list(current)
            removals = [
                removable[i]
                for i in rng.choice(
                    len(removable), size=min(15, len(removable) // 2), replace=False
                )
            ]
            additions = set()
            while len(additions) < 15:
                row = (
                    int(rng.integers(ne)),
                    int(rng.integers(ne)),
                    int(rng.integers(nr)),
                )
                if row not in current:
                    additions.add(row)
            incremental.remove_triples(np.array(removals, dtype=np.int64))
            incremental.add_triples(np.array(sorted(additions), dtype=np.int64))
            current -= set(removals)
            current |= additions

            from repro.kg.triples import TripleSet

            rebuilt = FilterIndex(
                TripleSet(np.array(sorted(current), dtype=np.int64), ne, nr)
            )
            assert_same_index(incremental, rebuilt)

    def test_emptied_keys_are_popped(self, toy_dataset):
        """Removing a key's last member must delete the key outright —
        the structural property that makes incremental ≡ rebuilt."""
        index = FilterIndex(toy_dataset.all_triples())
        h = toy_dataset.entities.index("frank")
        t = toy_dataset.entities.index("bob")
        r = toy_dataset.relations.index("likes")
        assert (h, r) in index._tails
        index.remove_triples(np.array([[h, t, r]], dtype=np.int64))
        assert (h, r) not in index._tails

    def test_removing_absent_triples_is_a_noop(self, toy_dataset):
        index = FilterIndex(toy_dataset.all_triples())
        snapshot = {k: v.copy() for k, v in index._tails.items()}
        index.remove_triples(np.array([[0, 0, 0]], dtype=np.int64))
        assert set(index._tails) == set(snapshot)
        for key, values in snapshot.items():
            np.testing.assert_array_equal(index._tails[key], values)


class TestCopyAndGrow:
    def test_copy_is_mutation_isolated(self, toy_dataset):
        index = toy_dataset.filter_index
        clone = index.copy()
        clone.grow(toy_dataset.num_entities + 5)
        clone.add_triples(
            np.array([[toy_dataset.num_entities, 0, 0]], dtype=np.int64)
        )
        assert index.num_entities == toy_dataset.num_entities
        assert (toy_dataset.num_entities, 0) not in index._tails
        assert (toy_dataset.num_entities, 0) in clone._tails

    def test_grow_refuses_shrink(self, toy_dataset):
        index = FilterIndex(toy_dataset.all_triples())
        with pytest.raises(DatasetError, match="shrink"):
            index.grow(num_entities=1)
        with pytest.raises(DatasetError, match="shrink"):
            index.grow(num_relations=0)

    def test_add_out_of_range_rejected(self, toy_dataset):
        index = FilterIndex(toy_dataset.all_triples())
        with pytest.raises(DatasetError, match="out of range"):
            index.add_triples(
                np.array([[toy_dataset.num_entities, 0, 0]], dtype=np.int64)
            )
        with pytest.raises(DatasetError, match="out of range"):
            index.add_triples(
                np.array([[0, 0, toy_dataset.num_relations]], dtype=np.int64)
            )

    def test_malformed_rows_rejected(self, toy_dataset):
        index = FilterIndex(toy_dataset.all_triples())
        with pytest.raises(DatasetError, match=r"\(n, 3\)"):
            index.add_triples(np.zeros((2, 4), dtype=np.int64))


class TestAugmentRoutesIncrementally:
    def test_augmented_index_matches_from_scratch(self, toy_dataset):
        _ = toy_dataset.filter_index  # source has paid for its index
        augmented = augment_with_inverses(toy_dataset)
        # derived during augmentation — no lazy rebuild pending
        assert augmented._filter_index is not None
        assert_same_index(
            augmented._filter_index, FilterIndex(augmented.all_triples())
        )

    def test_without_source_index_augment_stays_lazy(self, toy_dataset):
        bare = KGDataset(
            entities=toy_dataset.entities,
            relations=toy_dataset.relations,
            train=toy_dataset.train,
            valid=toy_dataset.valid,
            test=toy_dataset.test,
            name=toy_dataset.name,
        )
        augmented = augment_with_inverses(bare)
        assert augmented._filter_index is None


def test_single_from_scratch_construction_site():
    """Exactly one ``FilterIndex(...)`` construction in the library: the
    lazy ``KGDataset.filter_index`` property.  Every other path must go
    through the incremental update API."""
    pattern = re.compile(r"FilterIndex\(")
    sites = []
    for path in SRC_ROOT.rglob("*.py"):
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if pattern.search(line) and "class FilterIndex" not in line:
                stripped = line.strip()
                # skip annotations/doc references; keep real call sites
                if re.search(r"(?<![\w.])FilterIndex\(", stripped) and not (
                    stripped.startswith(("#", '"', "'"))
                ):
                    sites.append(f"{path.relative_to(SRC_ROOT)}:{lineno}")
    assert len(sites) == 1 and sites[0].startswith(
        "kg/graph.py"
    ), f"unexpected FilterIndex construction sites: {sites}"
