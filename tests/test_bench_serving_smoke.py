"""Tier-1 smoke run of the serving-daemon benchmark.

Runs ``benchmarks/bench_serving_daemon.py`` in fast mode (1.5k-entity
graph, 300 Poisson requests): the JSON payload must have the documented
schema, micro-batched and request-at-a-time answers must be identical,
and the daemon's acceptance shape must hold with the smoke thresholds —
micro-batching beats request-at-a-time by ≥ 2x QPS at a bounded p99.
The headline ≥ 3x claim is asserted by the slow full-scale run (and by
the committed ``BENCH_serving.json``); a noisy shared CI core gets the
relaxed target.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.serving_daemon

BENCH_PATH = Path(__file__).parent.parent / "benchmarks" / "bench_serving_daemon.py"


@pytest.fixture(scope="module")
def bench_module():
    spec = importlib.util.spec_from_file_location("bench_serving_daemon", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def smoke_results(bench_module, tmp_path_factory):
    json_path = tmp_path_factory.mktemp("bench") / "BENCH_serving.json"
    results = bench_module.run_benchmark(fast=True, json_path=json_path)
    return results, json_path


def test_json_written_with_schema(smoke_results):
    results, json_path = smoke_results
    on_disk = json.loads(json_path.read_text(encoding="utf-8"))
    assert on_disk["config"]["fast"] is True
    assert on_disk["dataset"]["num_entities"] == results["dataset"]["num_entities"]
    assert on_disk["config"]["offered_qps"] > on_disk["config"]["serial_capacity_qps"]
    for mode in ("serial", "batched"):
        stats = on_disk[mode]
        for key in (
            "qps",
            "p50_ms",
            "p99_ms",
            "mean_latency_ms",
            "mean_coalesced",
            "max_coalesced",
            "served",
            "span_seconds",
        ):
            assert key in stats, f"{mode} missing {key}"
        assert stats["qps"] > 0
        assert stats["p50_ms"] <= stats["p99_ms"]
        assert stats["served"] == on_disk["config"]["requests"]
    for key in ("qps_ratio", "p99_within_bound", "results_identical", "achieved"):
        assert key in on_disk["acceptance"]


def test_serial_mode_never_coalesces(smoke_results):
    results, _ = smoke_results
    assert results["serial"]["mean_coalesced"] == 1.0
    assert results["serial"]["max_coalesced"] == 1
    assert results["batched"]["mean_coalesced"] > 1.0


def test_batching_is_not_an_approximation(smoke_results):
    """Both modes must return identical ids for every request."""
    results, _ = smoke_results
    assert results["acceptance"]["results_identical"]


def test_acceptance_qps_ratio_at_bounded_p99(smoke_results, bench_module):
    """The headline shape at smoke thresholds: ≥2x QPS, bounded p99."""
    results, _ = smoke_results
    assert results["acceptance"]["achieved"], results["acceptance"]
    assert (
        results["acceptance"]["qps_ratio"] >= bench_module.SMOKE_QPS_RATIO_TARGET
    )
    assert results["batched"]["p99_ms"] <= bench_module.SMOKE_P99_BOUND_MS


def test_committed_artifact_is_a_passing_full_run():
    """The repo-root BENCH_serving.json must be a real full-scale run
    that met the ≥3x target — the committed evidence for the claim."""
    artifact = Path(__file__).parent.parent / "BENCH_serving.json"
    payload = json.loads(artifact.read_text(encoding="utf-8"))
    assert payload["config"]["fast"] is False
    assert payload["config"]["ratio_target"] >= 3.0
    assert payload["acceptance"]["achieved"] is True
    assert payload["acceptance"]["qps_ratio"] >= 3.0
    assert payload["acceptance"]["results_identical"] is True
