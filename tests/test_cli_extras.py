"""Tests for the CLI's --save / --per-relation options and predict command."""

from __future__ import annotations

import numpy as np

from repro.cli import main
from repro.core.serialization import load_model


class TestSaveOption:
    def test_checkpoint_written_and_loadable(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        code = main([
            "train", "cph", "--entities", "100", "--total-dim", "8",
            "--epochs", "2", "--batch-size", "256", "--quiet",
            "--save", str(ckpt),
        ])
        assert code == 0
        assert "checkpoint written" in capsys.readouterr().out
        model = load_model(ckpt)
        assert model.name == "CPh"
        scores = model.score_triples(np.array([0]), np.array([1]), np.array([0]))
        assert np.isfinite(scores).all()


class TestPerRelationOption:
    def test_per_relation_table_printed(self, capsys):
        code = main([
            "train", "distmult", "--entities", "100", "--total-dim", "8",
            "--epochs", "2", "--batch-size", "256", "--quiet", "--per-relation",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "relation" in out
        assert "hypernym" in out


class TestPredictCommand:
    def _train_checkpoint(self, tmp_path, capsys):
        dataset_dir = tmp_path / "kg"
        ckpt = tmp_path / "ckpt"
        assert main(["generate", str(dataset_dir), "--entities", "100",
                     "--clusters", "8", "--seed", "1"]) == 0
        assert main([
            "train", "complex", "--dataset", str(dataset_dir), "--total-dim", "8",
            "--epochs", "2", "--batch-size", "256", "--quiet", "--save", str(ckpt),
        ]) == 0
        capsys.readouterr()
        head, relation = (dataset_dir / "train.txt").read_text().split("\n")[0].split("\t")[:2]
        return dataset_dir, ckpt, head, relation

    def test_tail_prediction_prints_ranked_table(self, tmp_path, capsys):
        dataset_dir, ckpt, head, relation = self._train_checkpoint(tmp_path, capsys)
        code = main([
            "predict", str(ckpt), "--dataset", str(dataset_dir),
            "--head", head, "--relation", relation, "-k", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "top-5 tail candidates" in out
        assert f"({head}, {relation}, ?)" in out
        assert out.count("entity_") >= 1

    def test_relation_prediction_when_relation_omitted(self, tmp_path, capsys):
        dataset_dir, ckpt, head, _ = self._train_checkpoint(tmp_path, capsys)
        tail = (dataset_dir / "train.txt").read_text().split("\n")[0].split("\t")[2]
        code = main([
            "predict", str(ckpt), "--dataset", str(dataset_dir),
            "--head", head, "--tail", tail, "-k", "3",
        ])
        assert code == 0
        assert "relation candidates" in capsys.readouterr().out

    def test_unknown_entity_fails_cleanly(self, tmp_path, capsys):
        dataset_dir, ckpt, _, relation = self._train_checkpoint(tmp_path, capsys)
        code = main([
            "predict", str(ckpt), "--dataset", str(dataset_dir),
            "--head", "no_such_entity", "--relation", relation,
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_single_slot_fails_cleanly(self, tmp_path, capsys):
        dataset_dir, ckpt, head, _ = self._train_checkpoint(tmp_path, capsys)
        code = main(["predict", str(ckpt), "--dataset", str(dataset_dir), "--head", head])
        assert code == 2
        assert "exactly two" in capsys.readouterr().err
