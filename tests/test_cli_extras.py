"""Tests for the CLI's --save and --per-relation options."""

from __future__ import annotations

import numpy as np

from repro.cli import main
from repro.core.serialization import load_model


class TestSaveOption:
    def test_checkpoint_written_and_loadable(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        code = main([
            "train", "cph", "--entities", "100", "--total-dim", "8",
            "--epochs", "2", "--batch-size", "256", "--quiet",
            "--save", str(ckpt),
        ])
        assert code == 0
        assert "checkpoint written" in capsys.readouterr().out
        model = load_model(ckpt)
        assert model.name == "CPh"
        scores = model.score_triples(np.array([0]), np.array([1]), np.array([0]))
        assert np.isfinite(scores).all()


class TestPerRelationOption:
    def test_per_relation_table_printed(self, capsys):
        code = main([
            "train", "distmult", "--entities", "100", "--total-dim", "8",
            "--epochs", "2", "--batch-size", "256", "--quiet", "--per-relation",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "relation" in out
        assert "hypernym" in out
