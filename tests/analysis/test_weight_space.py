"""Unit tests for the ω-space enumeration and symmetry analysis."""

from __future__ import annotations

import pytest

from repro.analysis.weight_space import (
    are_equivalent,
    classify_weight_vectors,
    count_by_quality,
    enumerate_sign_weight_vectors,
    symmetry_orbit,
)
from repro.core import weights as W
from repro.core.weights import WeightVector
from repro.errors import ConfigError


class TestEnumeration:
    def test_binary_count(self):
        # 2^8 - 1 non-zero binary vectors
        vectors = list(enumerate_sign_weight_vectors(values=(0.0, 1.0)))
        assert len(vectors) == 255

    def test_ternary_count(self):
        vectors = list(enumerate_sign_weight_vectors())
        assert len(vectors) == 3**8 - 1

    def test_all_zero_excluded(self):
        for vector in enumerate_sign_weight_vectors(values=(0.0, 1.0)):
            assert any(v != 0 for v in vector.flatten())

    def test_intractable_shape_raises(self):
        with pytest.raises(ConfigError):
            list(enumerate_sign_weight_vectors(shape=(3, 3, 3)))


class TestClassification:
    def test_buckets_cover_everything(self):
        counts = count_by_quality(values=(0.0, 1.0))
        assert sum(counts.values()) == 255
        assert counts["good"] > 0
        assert counts["symmetric"] > 0
        assert counts["poor"] > 0

    def test_good_vectors_are_minority(self):
        """§6.1.2's implicit point: good ω are rare, bad ones abundant."""
        counts = count_by_quality(values=(0.0, 1.0))
        assert counts["good"] < counts["poor"]

    def test_known_presets_land_in_expected_buckets(self):
        buckets = classify_weight_vectors([W.COMPLEX, W.CP, W.UNIFORM])
        assert W.COMPLEX in buckets["good"]
        assert W.CP in buckets["poor"]
        assert W.UNIFORM in buckets["symmetric"]


class TestSymmetryOrbit:
    def test_orbit_contains_self(self):
        assert W.COMPLEX.flatten() in symmetry_orbit(W.COMPLEX)

    def test_orbit_closed_under_composition(self):
        orbit = symmetry_orbit(W.CPH)
        for flat in orbit:
            member = WeightVector.from_flat("m", flat)
            assert symmetry_orbit(member) == orbit

    def test_orbit_size_bounded_by_group_order(self):
        # group: S2 (entities) x S2 (relations) x Z2 (h/t swap) = 8 elements
        assert len(symmetry_orbit(W.COMPLEX)) <= 8

    def test_equivalence_symmetric_relation(self):
        assert are_equivalent(W.COMPLEX, W.COMPLEX_EQUIV_2)
        assert are_equivalent(W.COMPLEX_EQUIV_2, W.COMPLEX)

    def test_non_equivalence(self):
        assert not are_equivalent(W.DISTMULT, W.CP)

    def test_shape_mismatch_not_equivalent(self):
        assert not are_equivalent(W.DISTMULT_N1, W.DISTMULT)

    def test_role_based_tensor_raises(self):
        import numpy as np

        lopsided = WeightVector("x", np.ones((2, 3, 2)))
        with pytest.raises(ConfigError):
            symmetry_orbit(lopsided)
