"""Unit + property tests for the PCA projection utility."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.projection import pca_project
from repro.errors import EvaluationError


class TestPCA:
    def test_output_shapes(self, rng):
        features = rng.normal(size=(30, 8))
        result = pca_project(features, k=3)
        assert result.projected.shape == (30, 3)
        assert result.components.shape == (3, 8)
        assert result.explained_variance_ratio.shape == (3,)

    def test_components_orthonormal(self, rng):
        features = rng.normal(size=(40, 6))
        result = pca_project(features, k=4)
        gram = result.components @ result.components.T
        assert np.allclose(gram, np.eye(4), atol=1e-10)

    def test_recovers_dominant_direction(self, rng):
        direction = np.array([3.0, 4.0]) / 5.0
        points = np.outer(rng.normal(size=200), direction)
        points += 0.01 * rng.normal(size=points.shape)
        result = pca_project(points, k=1)
        cosine = abs(float(result.components[0] @ direction))
        assert cosine > 0.999
        assert result.explained_variance_ratio[0] > 0.99

    def test_variance_ratios_sorted_and_bounded(self, rng):
        features = rng.normal(size=(50, 10))
        ratios = pca_project(features, k=5).explained_variance_ratio
        assert np.all(ratios[:-1] >= ratios[1:] - 1e-12)
        assert 0.0 <= ratios.sum() <= 1.0 + 1e-12

    def test_transform_matches_fit(self, rng):
        features = rng.normal(size=(20, 5))
        result = pca_project(features, k=2)
        assert np.allclose(result.transform(features), result.projected)

    def test_projection_centers_data(self, rng):
        features = rng.normal(size=(100, 4)) + 17.0
        result = pca_project(features, k=2)
        assert np.allclose(result.projected.mean(axis=0), 0.0, atol=1e-9)

    def test_constant_data_zero_ratio(self):
        features = np.ones((10, 3))
        result = pca_project(features, k=2)
        assert np.allclose(result.explained_variance_ratio, 0.0)

    def test_bad_inputs_raise(self, rng):
        with pytest.raises(EvaluationError):
            pca_project(rng.normal(size=(5,)), k=1)
        with pytest.raises(EvaluationError):
            pca_project(rng.normal(size=(5, 3)), k=4)
        with pytest.raises(EvaluationError):
            pca_project(rng.normal(size=(5, 3)), k=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(3, 20), st.integers(2, 6))
    def test_property_projection_preserves_distances_in_full_rank(self, n, d):
        rng = np.random.default_rng(n * 100 + d)
        features = rng.normal(size=(n, d))
        k = min(n, d)
        result = pca_project(features, k=k)
        # full-rank projection is an isometry of the centered data
        centered = features - features.mean(axis=0)
        original = np.linalg.norm(centered[0] - centered[-1])
        projected = np.linalg.norm(result.projected[0] - result.projected[-1])
        assert projected == pytest.approx(original, rel=1e-8)
