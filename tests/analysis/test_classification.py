"""Tests for embeddings-as-pretrained-features classification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.classification import train_feature_classifier
from repro.errors import ConfigError


class TestFeatureClassifier:
    def test_fits_linearly_separable_data(self, rng):
        features = np.vstack([
            rng.normal(loc=(-2, 0), size=(40, 2)),
            rng.normal(loc=(2, 0), size=(40, 2)),
        ])
        labels = np.array([0] * 40 + [1] * 40)
        clf = train_feature_classifier(features, labels, epochs=150)
        assert clf.accuracy(features, labels) > 0.95

    def test_three_classes(self, rng):
        centers = np.array([[0, 4], [4, -2], [-4, -2]])
        features = np.vstack([
            rng.normal(loc=c, scale=0.6, size=(30, 2)) for c in centers
        ])
        labels = np.repeat([0, 1, 2], 30)
        clf = train_feature_classifier(features, labels, epochs=300)
        assert clf.accuracy(features, labels) > 0.9

    def test_predict_shape_and_range(self, rng):
        features = rng.normal(size=(20, 3))
        labels = rng.integers(0, 4, 20)
        clf = train_feature_classifier(features, labels, num_classes=4, epochs=5)
        preds = clf.predict(features)
        assert preds.shape == (20,)
        assert preds.min() >= 0 and preds.max() < 4

    def test_bad_inputs_raise(self, rng):
        with pytest.raises(ConfigError):
            train_feature_classifier(rng.normal(size=(3,)), np.array([0, 1, 0]))
        with pytest.raises(ConfigError):
            train_feature_classifier(rng.normal(size=(3, 2)), np.array([0, 5, 0]),
                                     num_classes=2)
        with pytest.raises(ConfigError):
            train_feature_classifier(np.empty((0, 2)), np.empty(0, dtype=int))
        with pytest.raises(ConfigError):
            train_feature_classifier(rng.normal(size=(3, 2)), np.array([0, 1, 0]),
                                     epochs=0)


class TestEmbeddingsAsFeatures:
    def test_trained_embeddings_predict_graph_structure(self, tiny_dataset):
        """The §1 pipeline: KGE embeddings -> features -> classifier.

        Labels are the entity's dominant relation role in the training
        graph (taxonomy-internal vs hub member) — a structural property a
        good embedding space should expose linearly much better than
        chance.
        """
        from repro.analysis.embeddings import entity_feature_matrix
        from repro.core.models import make_complex
        from repro.training.trainer import Trainer, TrainingConfig

        model = make_complex(tiny_dataset.num_entities, tiny_dataset.num_relations,
                             16, np.random.default_rng(0), regularization=3e-3)
        config = TrainingConfig(epochs=150, batch_size=256, learning_rate=0.02,
                                validate_every=1000, patience=1000, seed=0)
        Trainer(tiny_dataset, config).train(model)

        # label: does the entity appear as tail of 'member_of_domain'
        # (i.e. is it a domain hub)?  Hubs have distinctive embeddings.
        relation = tiny_dataset.relations.index("member_of_domain")
        arr = tiny_dataset.train.array
        hub_ids = set(arr[arr[:, 2] == relation][:, 1].tolist())
        labels = np.array([1 if e in hub_ids else 0
                           for e in range(tiny_dataset.num_entities)])
        features = entity_feature_matrix(model, normalize=True)
        clf = train_feature_classifier(features, labels, epochs=300)
        accuracy = clf.accuracy(features, labels)
        majority = max(labels.mean(), 1 - labels.mean())
        assert accuracy >= majority  # never worse than the trivial baseline
        # hubs are so distinctive that near-perfect separation is expected
        assert accuracy > 0.95
