"""Unit tests for :mod:`repro.analysis.embeddings`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.embeddings import (
    cosine_similarity_matrix,
    embedding_norms_by_slot,
    entity_feature_matrix,
    l2_normalize_rows,
    nearest_neighbors,
    relation_feature_matrix,
)
from repro.core import weights as W
from repro.core.models import make_model
from repro.errors import EvaluationError

NE, NR, DIM = 12, 3, 5


@pytest.fixture
def model(rng):
    return make_model(W.COMPLEX, NE, NR, rng, dim=DIM, initializer="normal")


class TestFeatureExport:
    def test_entity_shape(self, model):
        assert entity_feature_matrix(model).shape == (NE, 2 * DIM)

    def test_relation_shape(self, model):
        assert relation_feature_matrix(model).shape == (NR, 2 * DIM)

    def test_normalized_rows(self, model):
        features = entity_feature_matrix(model, normalize=True)
        assert np.allclose(np.linalg.norm(features, axis=-1), 1.0)

    def test_concatenation_order(self, model):
        features = entity_feature_matrix(model)
        assert np.array_equal(features[3, :DIM], model.entity_embeddings[3, 0])
        assert np.array_equal(features[3, DIM:], model.entity_embeddings[3, 1])


class TestNormalize:
    def test_zero_rows_preserved(self):
        matrix = np.array([[0.0, 0.0], [3.0, 4.0]])
        out = l2_normalize_rows(matrix)
        assert np.allclose(out[0], 0.0)
        assert np.linalg.norm(out[1]) == pytest.approx(1.0)


class TestSimilarity:
    def test_cosine_matrix_diagonal_ones(self, rng):
        features = rng.normal(size=(6, 4))
        sims = cosine_similarity_matrix(features)
        assert np.allclose(np.diag(sims), 1.0)
        assert np.allclose(sims, sims.T)

    def test_nearest_neighbors_finds_duplicate(self, rng):
        features = rng.normal(size=(8, 4))
        features[5] = features[2] * 2.0  # same direction as row 2
        neighbors = nearest_neighbors(features, query=2, k=3)
        assert neighbors[0][0] == 5
        assert neighbors[0][1] == pytest.approx(1.0)

    def test_query_excluded(self, rng):
        features = rng.normal(size=(5, 3))
        neighbors = nearest_neighbors(features, query=1, k=4)
        assert all(idx != 1 for idx, _ in neighbors)

    def test_sorted_descending(self, rng):
        features = rng.normal(size=(10, 4))
        sims = [s for _, s in nearest_neighbors(features, 0, k=5)]
        assert sims == sorted(sims, reverse=True)

    def test_k_capped_at_population(self, rng):
        features = rng.normal(size=(4, 3))
        assert len(nearest_neighbors(features, 0, k=100)) == 3

    def test_bad_inputs_raise(self, rng):
        features = rng.normal(size=(4, 3))
        with pytest.raises(EvaluationError):
            nearest_neighbors(features, 99, k=1)
        with pytest.raises(EvaluationError):
            nearest_neighbors(features, 0, k=0)


class TestSlotNorms:
    def test_shape_and_positive(self, model):
        norms = embedding_norms_by_slot(model)
        assert norms.shape == (2,)
        assert np.all(norms > 0.0)

    def test_unit_normalized_model_slots_are_one(self, rng):
        model = make_model(W.COMPLEX, NE, NR, rng, dim=DIM, initializer="unit_normalized")
        assert np.allclose(embedding_norms_by_slot(model), 1.0)
