"""Shared fixtures: small deterministic datasets and generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg.graph import KGDataset
from repro.kg.synthetic import SyntheticKGConfig, generate_synthetic_kg


@pytest.fixture(autouse=True)
def _isolated_registries():
    """Snapshot/restore every component registry around each test.

    Several suites register throwaway components (models, optimizers,
    losses, samplers, dataset generators) to exercise the registry
    machinery.  Without isolation, a leaked registration makes results
    depend on test execution *order* — harmless under ``-x -q`` today,
    but a landmine for xdist-style reordering or partial runs.  The
    snapshot is cheap (shallow dict copies), so it runs for every test.
    """
    import repro.pipeline.components as components

    registries = (
        components.MODELS,
        components.OMEGA_PRESETS,
        components.OPTIMIZERS,
        components.LOSSES,
        components.NEGATIVE_SAMPLERS,
        components.DATASET_GENERATORS,
    )
    snapshots = [dict(registry._entries) for registry in registries]
    yield
    for registry, snapshot in zip(registries, snapshots):
        registry._entries.clear()
        registry._entries.update(snapshot)


@pytest.fixture(autouse=True)
def _isolated_telemetry():
    """Restore the ambient metrics registry / tracer around each test.

    Telemetry tests install module-global hooks (mirroring the fault
    injector); a leaked installation would silently flip every later
    test onto the telemetry-enabled code path.
    """
    from repro.obs import registry as obs_registry
    from repro.obs import trace as obs_trace

    saved_registry = obs_registry.active_registry()
    saved_tracer = obs_trace.active_tracer()
    yield
    obs_registry.install_metrics_registry(saved_registry)
    obs_trace.install_tracer(saved_tracer)


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset() -> KGDataset:
    """A ~100-entity synthetic dataset, shared read-only across tests."""
    config = SyntheticKGConfig(
        num_entities=100,
        num_clusters=8,
        num_domains=3,
        valid_fraction=0.05,
        test_fraction=0.05,
        seed=42,
        name="tiny",
    )
    return generate_synthetic_kg(config)


@pytest.fixture(scope="session")
def small_dataset() -> KGDataset:
    """A ~300-entity synthetic dataset for integration tests."""
    config = SyntheticKGConfig(
        num_entities=300,
        num_clusters=15,
        num_domains=5,
        seed=7,
        name="small",
    )
    return generate_synthetic_kg(config)


@pytest.fixture
def toy_dataset() -> KGDataset:
    """A hand-written 6-entity dataset with known structure.

    Relations: ``likes`` (asymmetric), ``married_to`` (symmetric pair).
    """
    train = [
        ("alice", "bob", "likes"),
        ("bob", "carol", "likes"),
        ("carol", "dave", "likes"),
        ("alice", "eve", "likes"),
        ("eve", "frank", "likes"),
        ("alice", "dave", "married_to"),
        ("dave", "alice", "married_to"),
        ("bob", "eve", "married_to"),
        ("eve", "bob", "married_to"),
        ("frank", "bob", "likes"),
    ]
    valid = [("dave", "eve", "likes")]
    test = [("carol", "frank", "likes")]
    return KGDataset.from_labeled_triples(train, valid, test, name="toy")
