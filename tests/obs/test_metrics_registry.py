"""Metrics registry: counters, gauges, histograms, snapshots, merging."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigError
from repro.obs import registry as obs_registry
from repro.obs.registry import (
    DEFAULT_BUCKETS_S,
    MetricsRegistry,
    MetricsSnapshot,
    metrics_scope,
)

pytestmark = pytest.mark.obs


class TestCounters:
    def test_inc_defaults_to_one(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a")
        registry.inc("b", 5)
        assert registry.counter_value("a") == 2
        assert registry.counter_value("b") == 5

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0

    def test_set_counter_overwrites(self):
        registry = MetricsRegistry()
        registry.inc("a", 10)
        registry.set_counter("a", 3)
        assert registry.counter_value("a") == 3


class TestGauges:
    def test_gauge_set_overwrites_and_max_keeps_high_water(self):
        registry = MetricsRegistry()
        registry.gauge_set("depth", 5.0)
        registry.gauge_set("depth", 2.0)
        assert registry.gauge_value("depth") == 2.0
        registry.gauge_max("peak", 5.0)
        registry.gauge_max("peak", 2.0)
        assert registry.gauge_value("peak") == 5.0


class TestHistograms:
    def test_observe_counts_and_mean(self):
        registry = MetricsRegistry()
        for value in (0.001, 0.002, 0.004):
            registry.observe("lat", value)
        assert registry.histogram_count("lat") == 3
        snap = registry.snapshot().histograms["lat"]
        assert snap.mean == pytest.approx((0.001 + 0.002 + 0.004) / 3)
        assert snap.min_value == 0.001
        assert snap.max_value == 0.004

    def test_quantile_is_upper_bound(self):
        registry = MetricsRegistry()
        for _ in range(100):
            registry.observe("lat", 0.0009)  # lands in the <= 0.001 bucket
        q = registry.quantile("lat", 0.9)
        assert q is not None
        assert q >= 0.0009
        assert q in DEFAULT_BUCKETS_S

    def test_quantile_of_missing_histogram_is_none(self):
        assert MetricsRegistry().quantile("nope", 0.5) is None

    def test_overflow_bucket_reports_observed_max(self):
        registry = MetricsRegistry()
        registry.observe("lat", 99.0)  # beyond the last finite bound
        assert registry.quantile("lat", 0.99) == 99.0


class TestSnapshots:
    def test_snapshot_roundtrips_through_pickle_and_dict(self):
        registry = MetricsRegistry()
        registry.inc("c", 3)
        registry.gauge_set("g", 1.5)
        registry.observe("h", 0.01)
        snap = registry.snapshot()
        assert MetricsSnapshot.from_dict(snap.to_dict()) == snap
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_to_dict_is_sorted_and_deterministic(self):
        registry = MetricsRegistry()
        registry.inc("z")
        registry.inc("a")
        data = registry.snapshot().to_dict()
        assert list(data["counters"]) == ["a", "z"]

    def test_merged_sums_counters_maxes_gauges_adds_buckets(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.inc("c", 2)
        right.inc("c", 3)
        left.gauge_max("peak", 7.0)
        right.gauge_max("peak", 4.0)
        left.observe("h", 0.001)
        right.observe("h", 0.004)
        merged = left.snapshot().merged(right.snapshot())
        assert merged.counters["c"] == 5
        assert merged.gauges["peak"] == 7.0
        assert merged.histograms["h"].count == 2
        assert merged.histograms["h"].min_value == 0.001
        assert merged.histograms["h"].max_value == 0.004

    def test_merge_order_independent(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.inc("c", 2)
        left.observe("h", 0.001)
        right.inc("c", 3)
        right.observe("h", 0.1)
        a = left.snapshot().merged(right.snapshot())
        b = right.snapshot().merged(left.snapshot())
        assert a == b

    def test_mismatched_bounds_refuse_to_merge(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.observe("h", 0.001)
        right.observe("h", 0.001, bounds=(0.5, 1.0))
        with pytest.raises(ConfigError, match="bucket bounds"):
            left.snapshot().merged(right.snapshot())


class TestActiveRegistry:
    def test_free_functions_are_noops_without_registry(self):
        assert obs_registry.active_registry() is None
        # Must not raise, must not allocate a registry.
        obs_registry.inc("x")
        obs_registry.observe("y", 0.1)
        obs_registry.gauge_set("z", 1.0)
        assert obs_registry.active_registry() is None

    def test_metrics_scope_installs_and_restores(self):
        registry = MetricsRegistry()
        with metrics_scope(registry):
            obs_registry.inc("inside")
            assert obs_registry.active_registry() is registry
        assert obs_registry.active_registry() is None
        assert registry.counter_value("inside") == 1

    def test_install_returns_previous(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        assert obs_registry.install_metrics_registry(first) is None
        assert obs_registry.install_metrics_registry(second) is first
        assert obs_registry.install_metrics_registry(None) is second

    def test_reset_prefix_scopes_generations(self):
        registry = MetricsRegistry()
        registry.inc("server.a")
        registry.observe("server.lat", 0.1)
        registry.inc("pool.tasks")
        registry.reset_prefix("server.")
        assert registry.counter_value("server.a") == 0
        assert registry.histogram_count("server.lat") == 0
        assert registry.counter_value("pool.tasks") == 1
