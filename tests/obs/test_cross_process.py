"""Cross-process metric aggregation and enabled-vs-disabled bit-identity.

The pool captures a per-task-attempt delta registry and ships its
snapshot home on each :class:`TaskOutcome`; the parent merges only the
final kept attempt of each task.  These tests pin the aggregation
invariants the design leans on:

* in-process and worker-pool execution aggregate to the same numbers,
* a crashed-then-retried task counts exactly once (no double counting),
* :class:`ShardedEvaluator` metrics survive the process boundary,
* a telemetry-enabled pipeline run is bit-identical to a disabled one
  in every artifact except ``telemetry.jsonl``.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import registry as obs_registry
from repro.obs.registry import MetricsRegistry, metrics_scope
from repro.obs.trace import Tracer, telemetry_scope
from repro.parallel.pool import run_tasks
from repro.reliability.faults import FaultPlan, FaultSpec

pytestmark = [pytest.mark.obs, pytest.mark.parallel]


def _observed_square(task: int) -> int:
    obs_registry.inc("work.tasks_done")
    obs_registry.inc("work.items", task)
    obs_registry.observe("work.seconds", 0.001 * (task + 1))
    return task * task


class TestPoolAggregation:
    def _run(self, workers: int, **kwargs) -> MetricsRegistry:
        registry = MetricsRegistry()
        with metrics_scope(registry):
            outcomes = run_tasks(_observed_square, list(range(4)), workers=workers,
                                 **kwargs)
        assert [o.value for o in outcomes] == [0, 1, 4, 9]
        return registry

    def test_in_process_aggregation(self):
        registry = self._run(workers=0)
        assert registry.counter_value("work.tasks_done") == 4
        assert registry.counter_value("work.items") == 0 + 1 + 2 + 3
        assert registry.histogram_count("work.seconds") == 4
        assert registry.counter_value("pool.tasks") == 4
        assert registry.counter_value("pool.task_failures") == 0

    def test_worker_pool_matches_in_process(self):
        serial = self._run(workers=0).snapshot()
        pooled = self._run(workers=2).snapshot()
        # Counters and histogram contents must agree exactly; only the
        # pool bookkeeping counters (attempts) may differ under retries.
        assert pooled.counters["work.tasks_done"] == serial.counters["work.tasks_done"]
        assert pooled.counters["work.items"] == serial.counters["work.items"]
        assert (
            pooled.histograms["work.seconds"].counts
            == serial.histograms["work.seconds"].counts
        )

    def test_crashed_attempt_counts_once_after_retry(self):
        plan = FaultPlan.of(
            FaultSpec(site="pool.task", kind="crash", match="task:1;attempt:0")
        )
        registry = MetricsRegistry()
        with metrics_scope(registry):
            outcomes = run_tasks(
                _observed_square,
                list(range(4)),
                workers=2,
                retries=1,
                fault_plan=plan,
            )
        assert [o.value for o in outcomes] == [0, 1, 4, 9]
        # The crashed attempt's partial registry must be discarded: only
        # the successful retry contributes, so the totals equal a clean
        # run's exactly.
        assert registry.counter_value("work.tasks_done") == 4
        assert registry.counter_value("work.items") == 6
        assert registry.histogram_count("work.seconds") == 4
        assert registry.counter_value("pool.tasks") == 4
        assert registry.counter_value("pool.task_attempts") >= 5

    def test_no_telemetry_attaches_no_snapshots(self):
        outcomes = run_tasks(_observed_square, [1, 2], workers=0)
        assert all(o.metrics is None for o in outcomes)


class TestShardedEvaluatorAggregation:
    @pytest.fixture(scope="class")
    def model(self, tiny_dataset):
        import numpy as np

        from repro.core.models import make_complex

        return make_complex(
            tiny_dataset.num_entities, tiny_dataset.num_relations, 8,
            np.random.default_rng(0),
        )

    def _evaluate(self, dataset, model, workers: int) -> MetricsRegistry:
        from repro.parallel.sharded_eval import ShardedEvaluator

        registry = MetricsRegistry()
        with metrics_scope(registry):
            ShardedEvaluator(dataset, shards=3, workers=workers).evaluate(
                model, "test"
            )
        return registry

    def test_shard_metrics_aggregate_in_process(self, tiny_dataset, model):
        registry = self._evaluate(tiny_dataset, model, workers=0)
        assert registry.counter_value("eval.shard_tasks") > 0
        assert registry.counter_value("eval.triples_ranked") == 2 * len(
            tiny_dataset.test
        )
        assert registry.histogram_count("eval.shard_seconds") > 0

    def test_shard_metrics_cross_process_equal_serial(self, tiny_dataset, model):
        serial = self._evaluate(tiny_dataset, model, workers=0)
        pooled = self._evaluate(tiny_dataset, model, workers=2)
        assert pooled.counter_value("eval.triples_ranked") == serial.counter_value(
            "eval.triples_ranked"
        )
        assert pooled.counter_value("eval.shard_tasks") == serial.counter_value(
            "eval.shard_tasks"
        )


@pytest.mark.pipeline
class TestPipelineBitIdentity:
    def _config(self):
        from repro.pipeline.config import (
            DatasetSection,
            ModelSection,
            RunConfig,
            TrainingSection,
        )

        return RunConfig(
            dataset=DatasetSection(
                generator="synthetic_wn18",
                params={"num_entities": 80, "num_clusters": 4, "seed": 11},
            ),
            model=ModelSection(name="complex", total_dim=8),
            training=TrainingSection(epochs=2, batch_size=64),
        )

    def test_ambient_telemetry_changes_no_artifact_bytes(self, tmp_path):
        from repro.pipeline.runner import run_pipeline

        plain_dir = tmp_path / "plain"
        run_pipeline(self._config(), run_dir=plain_dir)

        traced_dir = tmp_path / "traced"
        registry, tracer = MetricsRegistry(), Tracer()
        with telemetry_scope(registry, tracer):
            run_pipeline(self._config(), run_dir=traced_dir)

        plain_files = {
            p.relative_to(plain_dir) for p in plain_dir.rglob("*") if p.is_file()
        }
        traced_files = {
            p.relative_to(traced_dir) for p in traced_dir.rglob("*") if p.is_file()
        }
        from pathlib import Path

        from repro.obs.summary import TELEMETRY_FILE

        assert traced_files - plain_files == {Path(TELEMETRY_FILE)}
        for relative in plain_files:
            assert (plain_dir / relative).read_bytes() == (
                traced_dir / relative
            ).read_bytes(), f"telemetry changed {relative}"

        # And the telemetry actually recorded the run.
        assert registry.counter_value("pipeline.runs") == 1
        assert registry.counter_value("train.epochs") == 2
        lines = (
            (traced_dir / TELEMETRY_FILE).read_text(encoding="utf-8").splitlines()
        )
        records = [json.loads(line) for line in lines]
        assert records[-1]["type"] == "metrics"
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert {"pipeline.run", "pipeline.train", "train.epoch"} <= span_names

    def test_config_enabled_telemetry_writes_jsonl(self, tmp_path):
        import dataclasses

        from repro.obs.summary import TELEMETRY_FILE
        from repro.pipeline.config import ObservabilitySection
        from repro.pipeline.runner import run_pipeline

        config = dataclasses.replace(
            self._config(), observability=ObservabilitySection(enabled=True)
        )
        result = run_pipeline(config, run_dir=tmp_path / "run")
        telemetry = result.run_dir / TELEMETRY_FILE
        assert telemetry.exists()
        # The manifest must not hash telemetry.jsonl.
        manifest = json.loads(
            (result.run_dir / "manifest.json").read_text(encoding="utf-8")
        )
        assert TELEMETRY_FILE not in json.dumps(manifest)
