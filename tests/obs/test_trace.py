"""Tracing: span ids, nesting, the bounded ring, JSONL records."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.registry import active_registry
from repro.obs.trace import (
    Tracer,
    active_tracer,
    current_span_id,
    install_tracer,
    telemetry_scope,
    trace_scope,
)

pytestmark = pytest.mark.obs


class TestTracer:
    def test_span_ids_are_sequential_from_one(self):
        tracer = Tracer()
        a = tracer.begin("a")
        b = tracer.begin("b")
        assert (a.span_id, b.span_id) == (1, 2)

    def test_end_records_duration_and_status(self):
        tracer = Tracer()
        span = tracer.begin("op")
        tracer.end(span, status="error")
        assert span.duration_s is not None and span.duration_s >= 0
        assert tracer.spans()[0].status == "error"

    def test_ring_is_bounded_and_counts_drops(self):
        tracer = Tracer(ring_size=2)
        for name in ("a", "b", "c"):
            tracer.end(tracer.begin(name))
        assert [s.name for s in tracer.spans()] == ["b", "c"]
        assert tracer.dropped == 1

    def test_to_jsonl_round_trips(self):
        tracer = Tracer()
        span = tracer.begin("op", tags={"side": "tail"})
        tracer.end(span)
        lines = tracer.to_jsonl().strip().splitlines()
        record = json.loads(lines[0])
        assert record["type"] == "span"
        assert record["name"] == "op"
        assert record["tags"] == {"side": "tail"}
        assert record["parent"] is None


class TestTraceScope:
    def test_noop_without_tracer(self):
        assert active_tracer() is None
        with trace_scope("op") as span:
            assert span is None

    def test_nested_scopes_link_parent_child(self):
        tracer = Tracer()
        install_tracer(tracer)
        with trace_scope("outer") as outer:
            with trace_scope("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert current_span_id() == inner.span_id
            assert current_span_id() == outer.span_id
        assert current_span_id() is None
        names = [s.name for s in tracer.spans()]
        assert names == ["inner", "outer"]  # children finish first

    def test_explicit_parent_overrides_thread_stack(self):
        tracer = Tracer()
        install_tracer(tracer)
        with trace_scope("outer"):
            with trace_scope("cross_thread", parent=42) as span:
                assert span.parent_id == 42

    def test_exception_marks_span_error_and_propagates(self):
        tracer = Tracer()
        install_tracer(tracer)
        with pytest.raises(ValueError):
            with trace_scope("boom"):
                raise ValueError("x")
        assert tracer.spans()[0].status == "error"
        assert current_span_id() is None

    def test_spans_on_other_threads_need_explicit_parent(self):
        tracer = Tracer()
        install_tracer(tracer)
        seen: list[int | None] = []

        def worker(parent):
            with trace_scope("child", parent=parent) as span:
                seen.append(span.parent_id)

        with trace_scope("parent") as parent_span:
            thread = threading.Thread(target=worker, args=(parent_span.span_id,))
            thread.start()
            thread.join()
        assert seen == [parent_span.span_id]


class TestTelemetryScope:
    def test_installs_both_and_restores(self):
        registry, tracer = MetricsRegistry(), Tracer()
        with telemetry_scope(registry, tracer) as (reg, trc):
            assert reg is registry and trc is tracer
            assert active_registry() is registry
            assert active_tracer() is tracer
        assert active_registry() is None
        assert active_tracer() is None

    def test_restores_previous_installation(self):
        outer_registry, outer_tracer = MetricsRegistry(), Tracer()
        with telemetry_scope(outer_registry, outer_tracer):
            with telemetry_scope(MetricsRegistry(), Tracer()):
                assert active_registry() is not outer_registry
            assert active_registry() is outer_registry
            assert active_tracer() is outer_tracer
