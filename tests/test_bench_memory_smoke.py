"""Tier-1 smoke run of the million-entity memory benchmark.

Two layers of protection:

* ``benchmarks/bench_memory.py`` runs in fast mode (4k-entity graph) —
  the JSON payload must have the documented schema and meet the
  acceptance gates (recall@10 ≥ 0.95 against float64 exact answers,
  private working set ≥ 5x below the float64 in-process baseline), so a
  regression in the memmap store, the PQ coarse pass or the
  score-equivalence gate fails tier-1 immediately;
* the *committed* full-scale ``BENCH_memory.json`` at the repository
  root is re-checked against the same gates plus the million-entity
  floor, so the headline scale claim can never silently rot while the
  code drifts.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.index

REPO_ROOT = Path(__file__).parent.parent
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_memory.py"
COMMITTED_JSON = REPO_ROOT / "BENCH_memory.json"

MILLION = 1_000_000


@pytest.fixture(scope="module")
def bench_module():
    spec = importlib.util.spec_from_file_location("bench_memory", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def smoke_results(bench_module, tmp_path_factory):
    json_path = tmp_path_factory.mktemp("bench") / "BENCH_memory.json"
    results = bench_module.run_benchmark(fast=True, json_path=json_path)
    return results, json_path


def _check_schema(payload: dict) -> None:
    for arm in ("baseline", "mapped"):
        entry = payload[arm]
        for key in ("tracked_in_process_bytes", "tracked_mapped_bytes",
                    "batch_seconds", "latency", "storage"):
            assert key in entry, (arm, key)
        assert entry["latency"]["p50_ms"] > 0
        assert entry["latency"]["p90_ms"] >= entry["latency"]["p50_ms"]
    assert payload["mapped"]["checkpoint_dtype"] == "float32"
    assert 0.0 <= payload["recall_at_10"] <= 1.0
    assert payload["memory_reduction"] > 0
    assert "acceptance" in payload


class TestSmokeRun:
    def test_json_written_with_schema(self, smoke_results):
        results, json_path = smoke_results
        on_disk = json.loads(json_path.read_text(encoding="utf-8"))
        assert on_disk["config"]["fast"] is True
        assert on_disk["recall_at_10"] == results["recall_at_10"]
        _check_schema(on_disk)

    def test_mapped_arm_is_actually_mapped(self, smoke_results):
        """The mapped arm must hold (almost) nothing privately."""
        results, _ = smoke_results
        mapped = results["mapped"]
        assert mapped["tracked_mapped_bytes"] > 0
        assert mapped["tracked_in_process_bytes"] < mapped["tracked_mapped_bytes"]

    def test_equivalence_gap_is_recorded_and_tiny(self, smoke_results, bench_module):
        """float32 passed the save-time score-equivalence gate."""
        results, _ = smoke_results
        gap = results["mapped"]["score_equivalence_gap"]
        assert gap is not None and 0 <= gap <= 1e-6

    def test_acceptance_gates(self, smoke_results, bench_module):
        results, _ = smoke_results
        assert results["acceptance"]["achieved"], results["acceptance"]
        assert results["recall_at_10"] >= bench_module.RECALL_TARGET
        assert results["memory_reduction"] >= bench_module.REDUCTION_TARGET


class TestCommittedFullScaleResults:
    """The checked-in BENCH_memory.json must keep the headline claim."""

    @pytest.fixture(scope="class")
    def committed(self):
        assert COMMITTED_JSON.exists(), (
            "BENCH_memory.json is missing from the repository root; "
            "regenerate with `python benchmarks/bench_memory.py`"
        )
        return json.loads(COMMITTED_JSON.read_text(encoding="utf-8"))

    def test_schema(self, committed):
        _check_schema(committed)

    def test_million_entity_floor(self, committed):
        assert committed["config"]["fast"] is False
        assert committed["dataset"]["num_entities"] >= MILLION

    def test_recall_and_memory_gates(self, committed, bench_module):
        assert committed["recall_at_10"] >= bench_module.RECALL_TARGET
        assert committed["memory_reduction"] >= bench_module.REDUCTION_TARGET
        assert committed["acceptance"]["achieved"]

    def test_interactive_latency_recorded(self, committed):
        """Top-10 out of ≥1M entities must come back at interactive p50."""
        p50 = committed["mapped"]["latency"]["p50_ms"]
        assert 0 < p50 < 250.0
