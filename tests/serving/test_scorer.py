"""BatchedScorer and predictor API behavior (chunking, filtering, errors)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import TransE
from repro.core.models import make_complex
from repro.errors import ModelError, ServingError
from repro.serving import BatchedScorer, LinkPredictor, RelationFoldedScorer

NUM_ENTITIES, NUM_RELATIONS, BUDGET = 35, 5, 8


@pytest.fixture(scope="module")
def model():
    return make_complex(NUM_ENTITIES, NUM_RELATIONS, BUDGET, np.random.default_rng(1))


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(2)
    return rng.integers(0, NUM_ENTITIES, 13), rng.integers(0, NUM_RELATIONS, 13)


class TestBatchedScorer:
    @pytest.mark.parametrize("folded", [False, True])
    def test_chunk_size_stable_scores_and_identical_ranking(self, model, queries, folded):
        """Chunking may move values by a last-ulp (BLAS kernels differ per
        batch size) but must never change any within-row candidate order."""
        anchors, relations = queries
        full = BatchedScorer(model, folded=folded).all_scores(anchors, relations, "tail")
        full_order = np.argsort(-full, axis=1, kind="stable")
        for chunk in (1, 3, 13, 50):
            chunked = BatchedScorer(model, folded=folded, chunk_size=chunk).all_scores(
                anchors, relations, "tail"
            )
            np.testing.assert_allclose(full, chunked, rtol=1e-12, atol=1e-12)
            chunked_order = np.argsort(-chunked, axis=1, kind="stable")
            np.testing.assert_array_equal(full_order, chunked_order)

    def test_iter_covers_all_rows_in_order(self, model, queries):
        anchors, relations = queries
        scorer = BatchedScorer(model, chunk_size=4)
        spans = [
            (start, stop)
            for start, stop, _ in scorer.iter_all_scores(anchors, relations, "head")
        ]
        assert spans == [(0, 4), (4, 8), (8, 12), (12, 13)]

    def test_element_budget_bounds_chunk(self, model):
        scorer = BatchedScorer(model, max_chunk_elements=NUM_ENTITIES * 3)
        assert scorer.effective_chunk_size() == 3
        tiny = BatchedScorer(model, max_chunk_elements=1)
        assert tiny.effective_chunk_size() == 1

    def test_auto_folding_only_for_multi_embedding(self, model):
        assert BatchedScorer(model).uses_folding
        transe = TransE(NUM_ENTITIES, NUM_RELATIONS, BUDGET, np.random.default_rng(3))
        assert not BatchedScorer(transe).uses_folding

    def test_forced_folding_on_wrong_model_raises(self):
        transe = TransE(NUM_ENTITIES, NUM_RELATIONS, BUDGET, np.random.default_rng(3))
        with pytest.raises(ServingError):
            BatchedScorer(transe, folded=True)

    def test_folded_scores_match_model_scores(self, model, queries):
        anchors, relations = queries
        plain = BatchedScorer(model, folded=False).all_scores(anchors, relations, "tail")
        folded = BatchedScorer(model, folded=True).all_scores(anchors, relations, "tail")
        np.testing.assert_allclose(plain, folded, atol=1e-9)

    def test_bad_side_raises(self, model, queries):
        anchors, relations = queries
        with pytest.raises(ServingError):
            list(BatchedScorer(model).iter_all_scores(anchors, relations, "middle"))

    def test_bad_chunk_size_raises(self, model):
        with pytest.raises(ServingError):
            BatchedScorer(model, chunk_size=0)


class TestFoldedRefresh:
    def test_refresh_is_noop_until_version_changes(self, model):
        scorer = RelationFoldedScorer(model)
        assert scorer.refresh() is False
        model._bump_scoring_version()
        assert scorer.refresh() is True
        assert scorer.refresh() is False

    def test_force_refresh_always_rebuilds(self, model):
        scorer = RelationFoldedScorer(model)
        assert scorer.refresh(force=True) is True


class TestPredictorApi:
    def test_filtered_masking_pushes_known_tails_last(self, tiny_dataset):
        model = make_complex(
            tiny_dataset.num_entities,
            tiny_dataset.num_relations,
            BUDGET,
            np.random.default_rng(5),
        )
        predictor = LinkPredictor(model, tiny_dataset)
        h, t, r = (int(v) for v in tiny_dataset.train.array[0])
        full = predictor.top_k_tails([h], [r], k=tiny_dataset.num_entities)
        filtered = predictor.top_k_tails(
            [h], [r], k=tiny_dataset.num_entities, filtered=True
        )
        known = set(tiny_dataset.filter_index.true_tails(h, r).tolist())
        assert t in known
        masked_positions = [
            int(np.flatnonzero(filtered.ids[0] == e)[0]) for e in known
        ]
        # all known tails carry -inf and sort after every unknown entity
        boundary = tiny_dataset.num_entities - len(known)
        assert min(masked_positions) >= boundary
        assert np.isneginf(filtered.scores[0][boundary:]).all()
        # the unmasked ordering of unknown entities is unchanged
        unknown_full = [e for e in full.ids[0] if e not in known]
        assert unknown_full == list(filtered.ids[0][:boundary])

    def test_filtered_without_dataset_raises(self, model, queries):
        anchors, relations = queries
        predictor = LinkPredictor(model)
        with pytest.raises(ServingError, match="filter_index"):
            predictor.top_k_tails(anchors, relations, k=3, filtered=True)

    def test_k_clamped_to_num_entities(self, model):
        predictor = LinkPredictor(model)
        top = predictor.top_k_tails([0], [0], k=10_000)
        assert top.k == NUM_ENTITIES

    def test_bad_k_raises(self, model):
        with pytest.raises(ServingError):
            LinkPredictor(model).top_k_tails([0], [0], k=0)

    def test_mismatched_query_shapes_raise(self, model):
        with pytest.raises(ServingError):
            LinkPredictor(model).top_k_tails([0, 1], [0], k=1)

    def test_out_of_range_candidates_raise(self, model):
        with pytest.raises(ModelError):
            LinkPredictor(model).top_k_tails(
                [0], [0], k=1, candidates=np.array([NUM_ENTITIES + 3])
            )

    def test_labeled_results_use_vocabulary(self, tiny_dataset):
        model = make_complex(
            tiny_dataset.num_entities,
            tiny_dataset.num_relations,
            BUDGET,
            np.random.default_rng(7),
        )
        predictor = LinkPredictor(model, tiny_dataset)
        head = tiny_dataset.entities.name(0)
        relation = tiny_dataset.relations.name(0)
        results = predictor.predict(head=head, relation=relation, k=3)
        assert len(results) == 3
        for name, score in results:
            assert name in tiny_dataset.entities
            assert isinstance(score, float)

    def test_predict_requires_exactly_two_slots(self, tiny_dataset):
        model = make_complex(
            tiny_dataset.num_entities,
            tiny_dataset.num_relations,
            BUDGET,
            np.random.default_rng(7),
        )
        predictor = LinkPredictor(model, tiny_dataset)
        with pytest.raises(ServingError, match="exactly two"):
            predictor.predict(head=tiny_dataset.entities.name(0))

    def test_predict_without_dataset_raises(self, model):
        with pytest.raises(ServingError, match="vocabularies"):
            LinkPredictor(model).predict(head="a", relation="b")
