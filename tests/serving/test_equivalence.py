"""Equivalence properties: batched serving == brute-force per-triple scoring.

For every model class the repository ships, the serving layer's batched
``LinkPredictor.top_k_*`` results must exactly match a reference ranking
computed from one-at-a-time ``score_triples`` calls, with ties broken
toward the lower entity id — including on deliberately tied score
vectors, where the stable ordering corresponds to the ``optimistic``
rank of :mod:`repro.eval.ranking` for the first entity of a tie group.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ERMLP, RESCAL, TransE
from repro.core.direct import score_candidates_direct
from repro.core.models import (
    make_complex,
    make_distmult,
    make_learned_weight_model,
    make_quaternion,
)
from repro.eval.ranking import rank_of_true
from repro.serving import LinkPredictor

NUM_ENTITIES, NUM_RELATIONS, BUDGET = 40, 6, 8


def _model_zoo():
    rng = np.random.default_rng(7)
    return {
        "distmult": make_distmult(NUM_ENTITIES, NUM_RELATIONS, BUDGET, rng),
        "complex": make_complex(NUM_ENTITIES, NUM_RELATIONS, BUDGET, rng),
        "quaternion": make_quaternion(NUM_ENTITIES, NUM_RELATIONS, BUDGET, rng),
        "learned": make_learned_weight_model(NUM_ENTITIES, NUM_RELATIONS, BUDGET, rng),
        "transe": TransE(NUM_ENTITIES, NUM_RELATIONS, BUDGET, rng),
        "rescal": RESCAL(NUM_ENTITIES, NUM_RELATIONS, BUDGET, rng),
        "er_mlp": ERMLP(NUM_ENTITIES, NUM_RELATIONS, BUDGET, rng),
    }


MODELS = _model_zoo()


def brute_force_scores(model, anchors, relations, side):
    """(b, N) scores from independent per-triple ``score_triples`` calls."""
    candidates = np.arange(model.num_entities, dtype=np.int64)
    return score_candidates_direct(model, anchors, relations, candidates, side)


def brute_force_top_k(model, anchors, relations, k, side):
    """Reference top-k: descending score, ties toward the lower id."""
    scores = brute_force_scores(model, anchors, relations, side)
    order = np.argsort(-scores, axis=1, kind="stable")[:, :k]
    return order, np.take_along_axis(scores, order, axis=1)


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(11)
    anchors = rng.integers(0, NUM_ENTITIES, 5)
    relations = rng.integers(0, NUM_RELATIONS, 5)
    return anchors, relations


@pytest.mark.parametrize("name", list(MODELS))
@pytest.mark.parametrize("side", ["tail", "head"])
class TestTopKMatchesBruteForce:
    def test_full_sweep_top_k(self, name, side, queries):
        model = MODELS[name]
        anchors, relations = queries
        predictor = LinkPredictor(model)
        k = 7
        if side == "tail":
            got = predictor.top_k_tails(anchors, relations, k=k)
        else:
            got = predictor.top_k_heads(anchors, relations, k=k)
        want_ids, want_scores = brute_force_top_k(model, anchors, relations, k, side)
        assert np.array_equal(got.ids, want_ids), name
        np.testing.assert_allclose(got.scores, want_scores, atol=1e-9)

    def test_candidate_restricted_top_k(self, name, side, queries):
        model = MODELS[name]
        anchors, relations = queries
        rng = np.random.default_rng(13)
        # Deliberately unsorted: result order must not depend on how the
        # caller happened to order the candidate shortlist.
        candidates = rng.permutation(np.unique(rng.integers(0, NUM_ENTITIES, 15)))
        predictor = LinkPredictor(model)
        k = 4
        if side == "tail":
            got = predictor.top_k_tails(anchors, relations, k=k, candidates=candidates)
        else:
            got = predictor.top_k_heads(anchors, relations, k=k, candidates=candidates)
        ref = score_candidates_direct(model, anchors, relations, candidates, side)
        for row in range(len(anchors)):
            # Independent reference: descending score, ties by lower id.
            want = sorted(
                zip(ref[row], candidates), key=lambda pair: (-pair[0], pair[1])
            )[:k]
            assert list(got.ids[row]) == [int(c) for _, c in want], name
            np.testing.assert_allclose(
                got.scores[row], [s for s, _ in want], atol=1e-9
            )

    def test_score_candidates_fast_path_matches_direct(self, name, side, queries):
        model = MODELS[name]
        anchors, relations = queries
        rng = np.random.default_rng(17)
        candidates = rng.integers(0, NUM_ENTITIES, (len(anchors), 9))
        fast = model.score_candidates(anchors, relations, candidates, side)
        ref = score_candidates_direct(model, anchors, relations, candidates, side)
        np.testing.assert_allclose(fast, ref, atol=1e-9)


@pytest.mark.parametrize("name", list(MODELS))
def test_relation_top_k_matches_brute_force(name, queries):
    model = MODELS[name]
    anchors, _ = queries
    rng = np.random.default_rng(19)
    tails = rng.integers(0, NUM_ENTITIES, len(anchors))
    predictor = LinkPredictor(model)
    got = predictor.top_k_relations(anchors, tails, k=3)
    scores = np.empty((len(anchors), model.num_relations))
    for row in range(len(anchors)):
        for rel in range(model.num_relations):
            scores[row, rel] = model.score_triples(
                np.array([anchors[row]]), np.array([tails[row]]), np.array([rel])
            )[0]
    order = np.argsort(-scores, axis=1, kind="stable")[:, :3]
    assert np.array_equal(got.ids, order)


class TestTieEdgeCases:
    """Deliberate ties: duplicated embeddings force exactly-equal scores."""

    def _tied_model(self):
        model = make_complex(NUM_ENTITIES, NUM_RELATIONS, BUDGET, np.random.default_rng(23))
        # Entities 4, 9 and 17 become indistinguishable -> tied everywhere.
        model.entity_embeddings[9] = model.entity_embeddings[4]
        model.entity_embeddings[17] = model.entity_embeddings[4]
        return model

    def test_tied_candidates_ordered_by_id(self):
        model = self._tied_model()
        predictor = LinkPredictor(model)
        anchors = np.array([0, 1, 2])
        relations = np.array([0, 1, 2])
        top = predictor.top_k_tails(anchors, relations, k=NUM_ENTITIES)
        for row in range(len(anchors)):
            positions = {int(e): int(np.flatnonzero(top.ids[row] == e)[0]) for e in (4, 9, 17)}
            assert positions[4] < positions[9] < positions[17]
            tied_scores = [top.scores[row][positions[e]] for e in (4, 9, 17)]
            assert tied_scores[0] == tied_scores[1] == tied_scores[2]

    def test_stable_position_is_optimistic_rank_for_first_of_tie_group(self):
        model = self._tied_model()
        predictor = LinkPredictor(model)
        anchors = np.array([3])
        relations = np.array([1])
        top = predictor.top_k_tails(anchors, relations, k=NUM_ENTITIES)
        scores = brute_force_scores(model, anchors, relations, "tail")[0]
        # Entity 4 is the lowest id of its tie group, so its top-k position
        # (1-based) equals its optimistic rank; entity 17 is the highest id,
        # matching the pessimistic rank (eval/ranking.py conventions).
        pos4 = int(np.flatnonzero(top.ids[0] == 4)[0]) + 1
        pos17 = int(np.flatnonzero(top.ids[0] == 17)[0]) + 1
        assert pos4 == rank_of_true(scores, 4, tie_policy="optimistic")
        assert pos17 == rank_of_true(scores, 17, tie_policy="pessimistic")

    def test_candidate_path_ties_break_by_id_not_position(self):
        model = self._tied_model()
        predictor = LinkPredictor(model)
        # 17 listed before 4: ids must still come back id-ascending.
        top = predictor.top_k_tails(
            np.array([0]), np.array([0]), k=3, candidates=np.array([17, 9, 4])
        )
        assert list(top.ids[0]) == [4, 9, 17]
        assert top.scores[0][0] == top.scores[0][1] == top.scores[0][2]

    def test_all_zero_model_returns_identity_order(self):
        model = make_distmult(NUM_ENTITIES, NUM_RELATIONS, BUDGET, np.random.default_rng(29))
        model.entity_embeddings[:] = 0.0
        predictor = LinkPredictor(model)
        top = predictor.top_k_tails(np.array([0]), np.array([0]), k=10)
        assert np.array_equal(top.ids[0], np.arange(10))
        assert (top.scores == 0.0).all()
