"""Server telemetry: the ``metrics`` op, slow-query log, swap-scoped latency.

Contract under test (see :mod:`repro.serving.server`):

* **``stats_dict`` is unchanged** — the counters now live in the
  server's :class:`MetricsRegistry`, but the wire ``stats`` payload
  keeps its exact key set and semantics (clients pin these).
* **The ``metrics`` op** exposes the full registry snapshot (counters,
  gauges, histograms) plus the slow-query ring over TCP, and
  :meth:`metrics_text` renders the same snapshot Prometheus-style.
* **Slow queries** — a micro-batch group whose scoring call exceeds
  ``slow_query_ms`` wall-clock lands in a bounded ring with enough
  context to debug it (side, bucket, coalesced, generation).
* **Hot-swap resets the latency profile** — the retry-after hint is
  priced off the *current* deployment's service times; carrying the old
  model's histogram across a swap mis-priced every hint until the
  profile drifted back (the regression pinned here).

No pytest-asyncio: each test drives its own loop via ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.models import make_complex
from repro.errors import ServingError
from repro.kg.synthetic import SyntheticKGConfig, generate_synthetic_kg
from repro.serving import LinkPredictor, PredictionServer
from repro.serving.server import (
    DEFAULT_SLOW_QUERY_MS,
    SLOW_QUERY_RING,
    start_tcp_server,
)

pytestmark = [pytest.mark.serving_daemon, pytest.mark.obs]

BUDGET = 16

STATS_KEYS = {
    "generation", "graph_version", "scoring_version", "run_dir", "label",
    "queue_len", "queue_depth", "max_batch", "max_wait_ms", "closing",
    "submitted", "served", "rejected", "failed", "cancelled", "batches",
    "dispatch_calls", "mean_coalesced", "coalesced_max", "swaps",
    "peak_depth", "degraded", "degraded_served", "deadline_expired",
    "deltas_applied", "index",
}


@pytest.fixture(scope="module")
def dataset():
    return generate_synthetic_kg(
        SyntheticKGConfig(num_entities=200, num_clusters=10, seed=1)
    )


@pytest.fixture()
def model(dataset):
    return make_complex(
        dataset.num_entities, dataset.num_relations, BUDGET, np.random.default_rng(2)
    )


def _second_model(dataset):
    """A visibly different model (fresh init, different seed)."""
    return make_complex(
        dataset.num_entities, dataset.num_relations, BUDGET, np.random.default_rng(99)
    )


def _serve_some(server, n: int = 6):
    """Submit *n* tail queries and await them all."""
    return asyncio.gather(
        *[server.top_k_tails(i, 0, k=5) for i in range(n)]
    )


class TestStatsCompatibility:
    def test_stats_dict_keys_and_counters_unchanged(self, model, dataset):
        """Registry-backed counters must not change the stats payload."""

        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=8, max_wait_ms=2.0
            )
            async with server:
                await _serve_some(server, 6)
                return server.stats_dict()

        stats = asyncio.run(main())
        assert set(stats) == STATS_KEYS
        assert stats["submitted"] == 6
        assert stats["served"] == 6
        assert stats["rejected"] == 0
        assert stats["generation"] == 1
        assert stats["batches"] >= 1
        assert isinstance(stats["mean_coalesced"], float)
        # The same counters must be readable straight off the registry.

    def test_counters_live_in_the_registry(self, model, dataset):
        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=8, max_wait_ms=2.0
            )
            async with server:
                await _serve_some(server, 4)
                return server

        server = asyncio.run(main())
        assert server.metrics.counter_value("server.served") == 4
        assert server.metrics.counter_value("server.submitted") == 4
        assert server.stats.served == 4  # descriptor reads the registry

    def test_slow_query_ms_must_be_positive(self, model, dataset):
        predictor = LinkPredictor(model, dataset)
        with pytest.raises(ServingError):
            PredictionServer(predictor, slow_query_ms=0)
        server = PredictionServer(predictor)
        assert server.slow_query_ms == DEFAULT_SLOW_QUERY_MS


class TestMetricsOp:
    def test_metrics_dict_has_registry_and_gauges(self, model, dataset):
        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=8, max_wait_ms=2.0
            )
            async with server:
                await _serve_some(server, 5)
                return server.metrics_dict()

        payload = asyncio.run(main())
        assert payload["generation"] == 1
        snap = payload["metrics"]
        assert snap["counters"]["server.served"] == 5
        assert snap["gauges"]["server.queue_depth"] > 0
        assert snap["gauges"]["server.generation"] == 1
        for name in ("server.service_seconds", "server.dispatch_seconds",
                     "server.wait_seconds"):
            assert snap["histograms"][name]["count"] > 0, name
        # Exposition-time publication of the predictor's cache tallies.
        assert any(key.startswith("serving.cache.") for key in snap["counters"])
        assert payload["slow_queries"] == []

    def test_metrics_op_over_tcp(self, model, dataset):
        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=8, max_wait_ms=2.0
            )
            tcp = await start_tcp_server(server, port=0)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            queries = [
                {"id": 1, "op": "top_k", "side": "tail", "head": 3, "relation": 0,
                 "k": 5},
                {"id": 2, "op": "top_k", "side": "head", "tail": 7, "relation": 1,
                 "k": 3},
            ]
            writer.write(("".join(json.dumps(m) + "\n" for m in queries)).encode())
            await writer.drain()
            responses = {}
            for _ in queries:
                response = json.loads(await reader.readline())
                responses[response["id"]] = response
            # Each wire message is handled in its own task, so the
            # metrics scrape must go out *after* the query responses to
            # observe their counters.
            writer.write(b'{"id": 3, "op": "metrics"}\n')
            await writer.drain()
            response = json.loads(await reader.readline())
            responses[response["id"]] = response
            writer.close()
            await writer.wait_closed()
            tcp.close()
            await tcp.wait_closed()
            await server.close()
            return responses

        responses = asyncio.run(main())
        assert responses[1]["ok"] and responses[2]["ok"]
        payload = responses[3]["metrics"]
        assert payload["generation"] == 1
        assert payload["slow_query_ms"] == DEFAULT_SLOW_QUERY_MS
        counters = payload["metrics"]["counters"]
        assert counters["server.served"] == 2
        assert counters["server.submitted"] == 2
        assert payload["metrics"]["histograms"]["server.service_seconds"]["count"] == 2

    def test_metrics_text_is_prometheus_shaped(self, model, dataset):
        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=8, max_wait_ms=2.0
            )
            async with server:
                await _serve_some(server, 3)
                return server.metrics_text()

        text = asyncio.run(main())
        assert "# TYPE repro_server_served counter" in text
        assert "repro_server_served 3" in text
        assert "# TYPE repro_server_service_seconds histogram" in text
        # wait_seconds is observed per served request (service_seconds is
        # per coalesced group, so its count depends on batching luck).
        assert 'repro_server_wait_seconds_bucket{le="+Inf"} 3' in text

    def test_unknown_op_error_lists_metrics(self, model, dataset):
        async def main():
            server = PredictionServer(LinkPredictor(model, dataset))
            tcp = await start_tcp_server(server, port=0)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b'{"id": 1, "op": "nope"}\n')
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            tcp.close()
            await tcp.wait_closed()
            await server.close()
            return response

        response = asyncio.run(main())
        assert response["ok"] is False
        assert "metrics" in response["error"]["message"]


class TestSlowQueryLog:
    def test_over_threshold_groups_land_in_the_ring(self, model, dataset, caplog):
        """With a microscopic threshold every group is a slow query."""
        import logging

        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset),
                max_batch=8,
                max_wait_ms=2.0,
                slow_query_ms=1e-6,
            )
            async with server:
                await _serve_some(server, 4)
                return server.metrics_dict()

        with caplog.at_level(logging.WARNING, logger="repro.serving"):
            payload = asyncio.run(main())
        entries = payload["slow_queries"]
        assert entries, "expected every group to exceed a 1ns threshold"
        entry = entries[0]
        assert entry["side"] == "tail"
        assert entry["coalesced"] >= 1
        assert entry["elapsed_ms"] > 0
        assert entry["per_request_ms"] <= entry["elapsed_ms"]
        assert entry["generation"] == 1
        assert payload["metrics"]["counters"]["server.slow_queries"] == len(entries)
        assert any("slow query" in r.message for r in caplog.records)

    def test_ring_is_bounded(self, model, dataset):
        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset),
                max_batch=1,  # one group per request -> one entry each
                max_wait_ms=0.1,
                slow_query_ms=1e-6,
            )
            async with server:
                for i in range(SLOW_QUERY_RING + 8):
                    await server.top_k_tails(i % 50, 0, k=2)
                return server

        server = asyncio.run(main())
        assert len(server._slow_queries) == SLOW_QUERY_RING
        assert server.stats.slow_queries == SLOW_QUERY_RING + 8

    def test_fast_default_threshold_records_nothing(self, model, dataset):
        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=8, max_wait_ms=2.0
            )
            async with server:
                await _serve_some(server, 4)
                return server.metrics_dict()

        payload = asyncio.run(main())
        assert payload["slow_queries"] == []
        assert "server.slow_queries" not in payload["metrics"]["counters"]


class TestSwapResetsLatencyProfile:
    def test_retry_hint_rebuilds_from_post_swap_measurements(self, model, dataset):
        """Regression: the old deployment's service-time histogram leaked
        across ``swap_predictor``, so an overloaded server kept quoting
        retry-after hints priced off the *previous* model's latency (e.g.
        sweep-sized backoffs after swapping in an indexed predictor)."""

        async def main():
            loop = asyncio.get_running_loop()
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=16, max_wait_ms=2.0
            )
            async with server:
                # A generation-1 deployment with pathological service
                # times: every observation lands in the <= 5s bucket.
                for _ in range(20):
                    server._observe_service_time(4.0)
                # Manufacture a backlog so the hint prices a real queue.
                from repro.serving.server import _Pending

                backlog = [
                    _Pending(
                        side="tail", first=0, second=0, k=4, filtered=False,
                        future=loop.create_future(), enqueued_at=loop.time(),
                    )
                    for _ in range(8)
                ]
                server._pending.extend(backlog)
                slow_hint = server._retry_after_ms()

                await server.swap_predictor(
                    LinkPredictor(_second_model(dataset), dataset)
                )
                fresh_hint = server._retry_after_ms()

                # Unblock the manufactured queue before drain-close.
                for request in backlog:
                    server._pending.remove(request)
                    request.future.cancel()
                return slow_hint, fresh_hint, server

        slow_hint, fresh_hint, server = asyncio.run(main())
        # Pre-swap: 8 pending * 5s p90 / 16 batch ~= 2.5s of backlog.
        assert slow_hint > 1000
        # Post-swap there are no measurements for generation 2; the hint
        # falls back to the 50ms prior instead of the stale histogram.
        assert fresh_hint < 100
        assert server.metrics.histogram_count("server.service_seconds") == 0
        assert server._service_ema is None
        assert server.metrics.gauge_value("server.generation") == 2

    def test_generation_counters_survive_swap(self, model, dataset):
        """Only the latency profile resets; cumulative counters do not."""

        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=8, max_wait_ms=2.0
            )
            async with server:
                await _serve_some(server, 3)
                await server.swap_predictor(
                    LinkPredictor(_second_model(dataset), dataset)
                )
                await _serve_some(server, 2)
                return server.stats_dict(), server.metrics_dict()

        stats, payload = asyncio.run(main())
        assert stats["served"] == 5
        assert stats["swaps"] == 1
        assert stats["generation"] == 2
        histograms = payload["metrics"]["histograms"]
        # Only the service-time profile resets on swap: it holds just the
        # post-swap groups (2 requests -> 1 or 2 groups, batching luck)...
        assert 1 <= histograms["server.service_seconds"]["count"] <= 2
        # ...while the cumulative per-request wait histogram keeps all 5.
        assert histograms["server.wait_seconds"]["count"] == 5
