"""Cache correctness: hits change nothing, training invalidates everything."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import make_complex
from repro.errors import ServingError
from repro.nn.optimizers import make_optimizer
from repro.serving import LinkPredictor
from repro.serving.cache import LRUScoreCache

NUM_ENTITIES, NUM_RELATIONS, BUDGET = 30, 4, 8


@pytest.fixture
def model():
    return make_complex(NUM_ENTITIES, NUM_RELATIONS, BUDGET, np.random.default_rng(3))


@pytest.fixture
def queries():
    rng = np.random.default_rng(5)
    return rng.integers(0, NUM_ENTITIES, 6), rng.integers(0, NUM_RELATIONS, 6)


def _train_one_step(model, rng):
    positives = np.stack(
        [
            rng.integers(0, NUM_ENTITIES, 8),
            rng.integers(0, NUM_ENTITIES, 8),
            rng.integers(0, NUM_RELATIONS, 8),
        ],
        axis=1,
    )
    negatives = np.stack(
        [
            rng.integers(0, NUM_ENTITIES, 8),
            rng.integers(0, NUM_ENTITIES, 8),
            rng.integers(0, NUM_RELATIONS, 8),
        ],
        axis=1,
    )
    model.train_step(positives, negatives, make_optimizer("sgd", learning_rate=0.1))


class TestCacheHitCorrectness:
    def test_results_identical_after_cache_hits(self, model, queries):
        heads, rels = queries
        predictor = LinkPredictor(model)
        first = predictor.top_k_tails(heads, rels, k=5)
        assert predictor.cache_stats.hits == 0
        second = predictor.top_k_tails(heads, rels, k=5)
        assert predictor.cache_stats.hits > 0
        assert np.array_equal(first.ids, second.ids)
        assert np.array_equal(first.scores, second.scores)

    def test_cached_and_uncached_predictors_agree(self, model, queries):
        heads, rels = queries
        cached = LinkPredictor(model, cache_size=64)
        uncached = LinkPredictor(model, cache_size=0)
        cached.top_k_tails(heads, rels, k=5)  # populate
        a = cached.top_k_tails(heads, rels, k=5)
        b = uncached.top_k_tails(heads, rels, k=5)
        assert np.array_equal(a.ids, b.ids)
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_duplicate_rows_in_one_batch_share_a_sweep(self, model):
        predictor = LinkPredictor(model)
        heads = np.array([2, 2, 2])
        rels = np.array([1, 1, 1])
        top = predictor.top_k_tails(heads, rels, k=4)
        assert np.array_equal(top.ids[0], top.ids[1])
        assert np.array_equal(top.ids[0], top.ids[2])
        # one miss for the unique key, entries for it only
        assert predictor.cache_stats.size == 1

    def test_filtered_and_raw_queries_share_cache_entries(self, model, queries):
        heads, rels = queries
        predictor = LinkPredictor(model)
        predictor.top_k_tails(heads, rels, k=5)
        stats_before = predictor.cache_stats
        # A filtered query on the same keys must not recompute sweeps even
        # though its masked scores differ.
        from repro.kg.graph import FilterIndex
        from repro.kg.triples import TripleSet

        triples = TripleSet(
            np.array([[0, 1, 0]], dtype=np.int64), NUM_ENTITIES, NUM_RELATIONS
        )
        predictor._filter_index = FilterIndex(triples)
        predictor.top_k_tails(heads, rels, k=5, filtered=True)
        assert predictor.cache_stats.misses == stats_before.misses


class TestCacheInvalidation:
    def test_train_step_between_predictions_invalidates(self, model, queries):
        heads, rels = queries
        predictor = LinkPredictor(model)
        before = predictor.top_k_tails(heads, rels, k=5)
        version_before = model.scoring_version
        _train_one_step(model, np.random.default_rng(9))
        assert model.scoring_version > version_before
        after = predictor.top_k_tails(heads, rels, k=5)
        fresh = LinkPredictor(model, cache_size=0).top_k_tails(heads, rels, k=5)
        assert np.array_equal(after.ids, fresh.ids)
        np.testing.assert_array_equal(after.scores, fresh.scores)
        # and training genuinely moved the scores, so a stale cache would
        # have been observable
        assert not np.array_equal(before.scores, after.scores)

    def test_folded_tensor_refreshes_after_training(self, model, queries):
        heads, rels = queries
        predictor = LinkPredictor(model)
        assert predictor.scorer.uses_folding
        predictor.top_k_tails(heads, rels, k=3)
        _train_one_step(model, np.random.default_rng(13))
        after = predictor.top_k_tails(heads, rels, k=3)
        expected = LinkPredictor(model, cache_size=0, folded=False).top_k_tails(
            heads, rels, k=3
        )
        assert np.array_equal(after.ids, expected.ids)
        np.testing.assert_allclose(after.scores, expected.scores, atol=1e-9)

    @pytest.mark.parametrize("folded", [False, True])
    def test_clear_cache_resyncs_after_manual_surgery(self, model, queries, folded):
        """In-place weight edits bypass scoring_version; clear_cache must
        drop both the LRU entries and any stale folded tensor."""
        heads, rels = queries
        predictor = LinkPredictor(model, folded=folded)
        before = predictor.top_k_tails(heads, rels, k=3)
        model.entity_embeddings[:] = model.entity_embeddings[::-1].copy()
        model.relation_embeddings[:] = -model.relation_embeddings
        predictor.clear_cache()
        after = predictor.top_k_tails(heads, rels, k=3)
        fresh = LinkPredictor(model, cache_size=0, folded=False).top_k_tails(heads, rels, k=3)
        assert np.array_equal(after.ids, fresh.ids)
        np.testing.assert_allclose(after.scores, fresh.scores, atol=1e-9)
        assert not np.array_equal(before.scores, after.scores)


class TestLRUScoreCache:
    def test_capacity_and_eviction_order(self):
        cache = LRUScoreCache(capacity=2)
        cache.put((0, 0, "tail"), np.array([1.0]))
        cache.put((1, 0, "tail"), np.array([2.0]))
        cache.get((0, 0, "tail"))  # refresh key 0 -> key 1 becomes LRU
        cache.put((2, 0, "tail"), np.array([3.0]))
        assert (0, 0, "tail") in cache
        assert (1, 0, "tail") not in cache
        assert cache.stats.evictions == 1

    def test_stored_vectors_are_read_only_copies(self):
        cache = LRUScoreCache()
        source = np.array([1.0, 2.0])
        cache.put((0, 0, "tail"), source)
        source[0] = 99.0
        cached = cache.get((0, 0, "tail"))
        assert cached[0] == 1.0
        with pytest.raises(ValueError):
            cached[0] = 5.0

    def test_stats_and_clear(self):
        cache = LRUScoreCache(capacity=4)
        assert cache.get((0, 0, "tail")) is None
        cache.put((0, 0, "tail"), np.zeros(3))
        assert cache.get((0, 0, "tail")) is not None
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == 0.5
        cache.clear()
        assert len(cache) == 0

    def test_bad_capacity_raises(self):
        with pytest.raises(ServingError):
            LRUScoreCache(capacity=0)
