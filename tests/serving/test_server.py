"""The micro-batched asyncio serving daemon.

Contract under test (see :mod:`repro.serving.server`):

* **Coalescing is exact** — a micro-batch groups requests by
  ``(side, filtered, k-bucket)`` and answers them with one
  ``LinkPredictor`` call, bit-identical to composing the same direct
  batched call by hand (same code path, same shapes).  Per-query
  equivalence holds to the repository's chunking tolerance (ids exact,
  scores to 1e-10 — BLAS reassociates across batch shapes).
* **Backpressure** — requests beyond ``queue_depth`` fast-fail with
  :class:`ServerOverloadedError` carrying a retry-after hint.
* **Hot-swap is atomic** — every response is tagged with the
  generation/``scoring_version`` that served it, and the scores always
  match that deployment's model: no response mixes old and new.
* **Shutdown** — graceful drain answers everything queued; non-drain
  shutdown fails queued futures with :class:`ServerClosedError`.

No pytest-asyncio: each test drives its own loop via ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.models import make_complex
from repro.errors import (
    ServerClosedError,
    ServerOverloadedError,
    ServingError,
    StaleIndexError,
)
from repro.index.ivf import IVFIndex
from repro.kg.synthetic import SyntheticKGConfig, generate_synthetic_kg
from repro.serving import LinkPredictor, PredictionServer
from repro.serving.server import k_bucket, start_tcp_server

pytestmark = pytest.mark.serving_daemon

BUDGET = 16


@pytest.fixture(scope="module")
def dataset():
    return generate_synthetic_kg(
        SyntheticKGConfig(num_entities=200, num_clusters=10, seed=1)
    )


@pytest.fixture()
def model(dataset):
    return make_complex(
        dataset.num_entities, dataset.num_relations, BUDGET, np.random.default_rng(2)
    )


def _second_model(dataset):
    """A visibly different model (fresh init, different seed)."""
    return make_complex(
        dataset.num_entities, dataset.num_relations, BUDGET, np.random.default_rng(99)
    )


class TestKBucket:
    def test_powers_of_two(self):
        assert [k_bucket(k) for k in (1, 2, 3, 4, 5, 8, 9, 16, 17)] == [
            1, 2, 4, 4, 8, 8, 16, 16, 32,
        ]

    def test_rejects_nonpositive(self):
        with pytest.raises(ServingError):
            k_bucket(0)


class TestCoalescing:
    def test_single_group_bit_identical_to_direct_batched_call(self, model, dataset):
        """One (side, filtered, k-bucket) group == one hand-composed call."""
        heads = [3, 17, 9, 40, 3, 55, 28, 64]
        rels = [0, 1, 2, 0, 1, 2, 0, 1]
        k = 5

        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=32, max_wait_ms=50.0
            )
            async with server:
                return await asyncio.gather(*[
                    server.top_k_tails(h, r, k=k, filtered=True)
                    for h, r in zip(heads, rels)
                ])

        results = asyncio.run(main())
        assert all(r.coalesced == len(heads) for r in results)
        direct = LinkPredictor(model, dataset).top_k_tails(
            heads, rels, k=k_bucket(k), filtered=True
        )
        for row, served in enumerate(results):
            np.testing.assert_array_equal(served.ids, direct.ids[row, :k])
            np.testing.assert_array_equal(served.scores, direct.scores[row, :k])

    def test_per_query_equivalence_all_sides(self, model, dataset):
        """Coalesced answers match per-query direct calls: ids exactly,
        scores to the repository's cross-batch-shape tolerance."""
        rng = np.random.default_rng(0)
        queries = [
            (("tail", "head", "relation")[i % 3], int(a), int(b), 3 + (i % 3))
            for i, (a, b) in enumerate(
                zip(
                    rng.integers(0, dataset.num_entities, 24),
                    rng.integers(0, dataset.num_relations, 24),
                )
            )
        ]

        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=64, max_wait_ms=20.0
            )
            async with server:
                coros = []
                for side, a, b, k in queries:
                    if side == "tail":
                        coros.append(server.top_k_tails(a, b, k=k))
                    elif side == "head":
                        coros.append(server.top_k_heads(a, b, k=k))
                    else:
                        coros.append(server.top_k_relations(a, b % dataset.num_relations, k=k))
                return await asyncio.gather(*coros)

        results = asyncio.run(main())
        direct = LinkPredictor(model, dataset)
        for (side, a, b, k), served in zip(queries, results):
            if side == "tail":
                expected = direct.top_k_tails([a], [b], k=k)
            elif side == "head":
                expected = direct.top_k_heads([a], [b], k=k)
            else:
                expected = direct.top_k_relations([a], [b % dataset.num_relations], k=k)
            np.testing.assert_array_equal(served.ids, expected.ids[0])
            np.testing.assert_allclose(served.scores, expected.scores[0], atol=1e-10)

    def test_k_buckets_split_groups(self, model, dataset):
        """k=3 and k=7 land in different buckets (4 vs 8) ⇒ two calls."""

        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=32, max_wait_ms=50.0
            )
            async with server:
                small = [server.top_k_tails(i, 0, k=3) for i in range(4)]
                large = [server.top_k_tails(i, 0, k=7) for i in range(4)]
                return await asyncio.gather(*small, *large), server.stats_dict()

        results, stats = asyncio.run(main())
        assert all(r.coalesced == 4 for r in results)
        assert [len(r.ids) for r in results] == [3] * 4 + [7] * 4
        assert stats["dispatch_calls"] == 2
        assert stats["batches"] == 1

    def test_max_batch_bounds_a_tick(self, model, dataset):
        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=8, max_wait_ms=50.0
            )
            async with server:
                return await asyncio.gather(*[
                    server.top_k_tails(i % 100, 0, k=4) for i in range(20)
                ])

        results = asyncio.run(main())
        assert max(r.coalesced for r in results) <= 8
        assert len(results) == 20


class TestBackpressure:
    def test_overflow_fast_fails_with_retry_hint(self, model, dataset):
        depth = 8

        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset),
                max_batch=4,
                max_wait_ms=100.0,
                queue_depth=depth,
            )
            async with server:
                return await asyncio.gather(
                    *[server.top_k_tails(i % 100, 0, k=4) for i in range(depth + 12)],
                    return_exceptions=True,
                )

        outcomes = asyncio.run(main())
        rejected = [r for r in outcomes if isinstance(r, ServerOverloadedError)]
        served = [r for r in outcomes if not isinstance(r, Exception)]
        assert rejected, "queue overflow must reject"
        assert len(served) >= depth
        for error in rejected:
            assert error.retry_after_ms > 0
        assert len(served) + len(rejected) == depth + 12

    def test_stats_count_rejections(self, model, dataset):
        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset),
                max_batch=2,
                max_wait_ms=100.0,
                queue_depth=2,
            )
            async with server:
                await asyncio.gather(
                    *[server.top_k_tails(i, 0, k=2) for i in range(6)],
                    return_exceptions=True,
                )
                return server.stats_dict()

        stats = asyncio.run(main())
        assert stats["rejected"] > 0
        assert stats["submitted"] + stats["rejected"] == 6


class TestHotSwap:
    def test_no_response_mixes_versions(self, model, dataset):
        """Under a continuous request stream, every response's scores
        match the exact deployment (generation) it claims served it."""
        model_a, model_b = model, _second_model(dataset)
        # Distinct scoring_version so the tags are distinguishable.
        model_b._bump_scoring_version()

        async def main():
            server = PredictionServer(
                LinkPredictor(model_a, dataset), max_batch=8, max_wait_ms=1.0
            )
            async with server:
                first = [
                    asyncio.ensure_future(server.top_k_tails(i % 100, 0, k=4))
                    for i in range(30)
                ]
                await asyncio.sleep(0.005)
                swapped = await server.swap_predictor(LinkPredictor(model_b, dataset))
                second = [
                    asyncio.ensure_future(server.top_k_tails(i % 100, 0, k=4))
                    for i in range(30)
                ]
                results = await asyncio.gather(*first, *second)
                return results, swapped.generation

        results, new_generation = asyncio.run(main())
        assert new_generation == 2
        by_version = {
            1: (model_a.scoring_version, LinkPredictor(model_a, dataset)),
            2: (model_b.scoring_version, LinkPredictor(model_b, dataset)),
        }
        seen_generations = set()
        for i, served in enumerate(results):
            query = i % 100 if i < 30 else (i - 30) % 100
            version, direct = by_version[served.generation]
            seen_generations.add(served.generation)
            assert served.scoring_version == version
            expected = direct.top_k_tails([query], [0], k=4)
            np.testing.assert_array_equal(served.ids, expected.ids[0])
            np.testing.assert_allclose(served.scores, expected.scores[0], atol=1e-10)
        # The post-swap wave must be served by the new deployment.
        assert results[-1].generation == 2
        assert 2 in seen_generations

    def test_batches_never_straddle_a_swap(self, model, dataset):
        """Requests coalesced into one predictor call all carry the same
        generation tag (the dispatch lock excludes mid-batch flips)."""
        model_b = _second_model(dataset)

        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=16, max_wait_ms=5.0
            )
            async with server:
                futures = [
                    asyncio.ensure_future(server.top_k_tails(i, 0, k=4))
                    for i in range(16)
                ]
                swap = asyncio.ensure_future(
                    server.swap_predictor(LinkPredictor(model_b, dataset))
                )
                results = await asyncio.gather(*futures)
                await swap
                return results

        results = asyncio.run(main())
        # Group responses by the dispatch call that served them: same
        # coalesced size + same generation within a group is the invariant;
        # cheapest faithful check — every response pairs its generation
        # with that generation's scoring_version, never the other's.
        versions = {1: results[0].scoring_version}
        for served in results:
            if served.generation not in versions:
                versions[served.generation] = served.scoring_version
            assert versions[served.generation] == served.scoring_version

    def test_stale_index_refused_and_old_deployment_kept(self, model, dataset):
        index = IVFIndex(model, nlist=10, nprobe=2, on_stale="error")
        indexed = LinkPredictor(model, dataset, index=index)
        model._bump_scoring_version()  # the model "trained" after the build

        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=4, max_wait_ms=1.0
            )
            async with server:
                with pytest.raises(StaleIndexError):
                    await server.swap_predictor(indexed)
                assert server.generation == 1
                served = await server.top_k_tails(0, 0, k=3)
                return served.generation

        assert asyncio.run(main()) == 1


class TestLifecycle:
    def test_graceful_drain_answers_everything(self, model, dataset):
        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=4, max_wait_ms=20.0
            )
            await server.start()
            futures = [
                asyncio.ensure_future(server.top_k_tails(i, 0, k=3)) for i in range(10)
            ]
            await asyncio.sleep(0)
            await server.close(drain=True)
            results = await asyncio.gather(*futures)
            return results, server.stats_dict()

        results, stats = asyncio.run(main())
        assert len(results) == 10
        assert stats["served"] == 10
        assert stats["queue_len"] == 0

    def test_non_drain_shutdown_fails_queued_requests(self, model, dataset):
        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=4, max_wait_ms=200.0
            )
            await server.start()
            futures = [
                asyncio.ensure_future(server.top_k_tails(i, 0, k=3)) for i in range(6)
            ]
            await asyncio.sleep(0)
            await server.close(drain=False)
            return await asyncio.gather(*futures, return_exceptions=True)

        outcomes = asyncio.run(main())
        assert all(isinstance(r, ServerClosedError) for r in outcomes)

    def test_submission_after_close_is_refused(self, model, dataset):
        async def main():
            server = PredictionServer(LinkPredictor(model, dataset))
            async with server:
                pass
            with pytest.raises(ServerClosedError):
                await server.top_k_tails(0, 0, k=2)

        asyncio.run(main())

    def test_empty_server_refuses_requests(self):
        async def main():
            server = PredictionServer()
            async with server:
                with pytest.raises(ServingError):
                    await server.top_k_tails(0, 0, k=2)

        asyncio.run(main())

    def test_constructor_validation(self, model, dataset):
        predictor = LinkPredictor(model, dataset)
        with pytest.raises(ServingError):
            PredictionServer(predictor, max_batch=0)
        with pytest.raises(ServingError):
            PredictionServer(predictor, max_wait_ms=-1)
        with pytest.raises(ServingError):
            PredictionServer(predictor, queue_depth=0)


class TestTCPFrontend:
    def test_round_trip_and_error_codes(self, model, dataset):
        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=16, max_wait_ms=2.0
            )
            tcp = await start_tcp_server(server, port=0)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            messages = [
                {"id": 1, "op": "top_k", "side": "tail", "head": 3, "relation": 0,
                 "k": 5, "filtered": True},
                {"id": 2, "op": "top_k", "side": "head", "tail": 7, "relation": 1, "k": 3},
                {"id": 3, "op": "top_k", "side": "relation", "head": 1, "tail": 2, "k": 2},
                {"id": 4, "op": "ping"},
                {"id": 5, "op": "top_k", "side": "tail", "head": "x", "relation": 0},
                {"id": 6, "op": "unknown-op"},
                {"id": 7, "op": "stats"},
            ]
            writer.write(("".join(json.dumps(m) + "\n" for m in messages)).encode())
            await writer.drain()
            responses = {}
            for _ in messages:
                response = json.loads(await reader.readline())
                responses[response["id"]] = response
            writer.close()
            await writer.wait_closed()
            tcp.close()
            await tcp.wait_closed()
            await server.close()
            return responses

        responses = asyncio.run(main())
        direct = LinkPredictor(model, dataset)
        expected = direct.top_k_tails([3], [0], k=k_bucket(5), filtered=True)
        assert responses[1]["ok"] is True
        assert responses[1]["ids"] == [int(i) for i in expected.ids[0, :5]]
        assert responses[1]["generation"] == 1
        assert responses[2]["ok"] and len(responses[2]["ids"]) == 3
        assert responses[3]["ok"] and len(responses[3]["ids"]) == 2
        assert responses[4]["pong"] is True
        assert responses[5]["ok"] is False
        assert responses[5]["error"]["code"] == "bad_request"
        assert responses[6]["ok"] is False
        assert responses[6]["error"]["code"] == "bad_request"
        assert responses[7]["stats"]["generation"] == 1

    def test_filtered_scores_transport_as_null(self, model, dataset):
        """-inf (filtered) scores must arrive as JSON null."""
        import collections

        pairs = collections.Counter(
            zip(dataset.train.heads.tolist(), dataset.train.relations.tolist())
        )
        # The busiest (head, relation) pair: a full-width filtered query
        # for it is guaranteed to carry -inf entries for its positives.
        (head, relation), positives = pairs.most_common(1)[0]
        assert positives > 0

        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=4, max_wait_ms=1.0
            )
            tcp = await start_tcp_server(server, port=0)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            request = {"id": 1, "op": "top_k", "side": "tail", "head": head,
                       "relation": relation, "k": dataset.num_entities,
                       "filtered": True}
            writer.write((json.dumps(request) + "\n").encode())
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            tcp.close()
            await tcp.wait_closed()
            await server.close()
            return response

        response = asyncio.run(main())
        assert response["ok"] is True
        assert None in response["scores"]  # filtered candidates sort last
        finite = [s for s in response["scores"] if s is not None]
        assert finite == sorted(finite, reverse=True)

    def test_wire_shutdown_op_sets_event(self, model, dataset):
        async def main():
            server = PredictionServer(LinkPredictor(model, dataset))
            shutdown = asyncio.Event()
            tcp = await start_tcp_server(server, port=0, shutdown=shutdown)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b'{"id": 1, "op": "shutdown"}\n')
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            tcp.close()
            await tcp.wait_closed()
            await server.close()
            return response, shutdown.is_set()

        response, is_set = asyncio.run(main())
        assert response["ok"] is True and response["closing"] is True
        assert is_set


class TestRunDirIntegration:
    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        from repro.pipeline.config import (
            DatasetSection,
            IndexSection,
            ModelSection,
            RunConfig,
            TrainingSection,
        )
        from repro.pipeline.runner import run_pipeline

        config = RunConfig(
            dataset=DatasetSection(
                generator="synthetic_wn18",
                params={"num_entities": 120, "num_clusters": 6, "seed": 3},
            ),
            model=ModelSection(name="complex", total_dim=8),
            training=TrainingSection(epochs=2, batch_size=256),
            index=IndexSection(kind="ivf", nlist=8, nprobe=8),
        )
        path = tmp_path_factory.mktemp("serve_run") / "run"
        run_pipeline(config, run_dir=path)
        return path

    def test_load_run_hot_swaps_in_background(self, run_dir):
        async def main():
            server = PredictionServer(max_batch=4, max_wait_ms=1.0)
            async with server:
                deployment = await server.load_run(run_dir)
                served = await server.top_k_tails(0, 0, k=3, filtered=True)
                return deployment, served

        deployment, served = asyncio.run(main())
        assert deployment.generation == 1
        assert deployment.run_dir == str(run_dir)
        assert served.generation == 1
        assert len(served.ids) == 3

    def test_load_run_refuses_stale_persisted_index(self, run_dir):
        """A checkpoint re-written after the index build (fingerprint
        mismatch) is never rebuilt silently: ``index="require"`` refuses
        the swap, and the default ``"auto"`` *degrades* — it deploys the
        checkpoint without the index and flags the server degraded."""
        from repro.core.serialization import load_model, save_model
        from repro.reliability.manifest import read_manifest, write_manifest

        def checkpoint(model):
            # Re-save like a real training continuation would: refresh
            # the run manifest so the integrity layer stays consistent
            # (an unrefreshed manifest is the *corruption* case, tested
            # in the reliability suite).
            hashes = save_model(model, run_dir / "checkpoint")
            manifest = read_manifest(run_dir) or {}
            manifest.update(
                {f"checkpoint/{name}": digest for name, digest in hashes.items()}
            )
            write_manifest(run_dir, manifest)

        model = load_model(run_dir / "checkpoint")
        model.entity_embeddings[:] += 0.25  # "trained" past the index build
        checkpoint(model)
        try:
            async def main():
                server = PredictionServer()
                async with server:
                    with pytest.raises(StaleIndexError):
                        await server.load_run(run_dir, index="require")
                    assert server.generation == 0
                    deployment = await server.load_run(run_dir)
                    assert deployment.degraded
                    assert deployment.predictor.index is None
                    assert server.degraded
                    assert server.health_dict()["status"] == "degraded"
                    return server.generation

            assert asyncio.run(main()) == 1
        finally:
            model.entity_embeddings[:] -= 0.25
            checkpoint(model)
