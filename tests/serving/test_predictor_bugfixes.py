"""Regression tests for serving-path correctness bugs.

Three latent edge cases the serving daemon would have turned into
production incidents, each pinned by a test that fails on the pre-fix
code:

* ``_top_k_via_index`` crashed with ``IndexError`` when an index
  returned an *empty* shortlist (a degenerate IVF partition with no
  fallback): padding used ``row[-1]``.
* ``TopKResult.labeled`` resolved the pad id ``-1`` through the
  vocabulary, silently naming the *last* entity; ``predict`` only
  stripped pads from row 0.
* ``LinkPredictor._full_scores`` skipped ``_sync_version()`` whenever
  ``cache_size=0``, so the predictor's ``model_version`` bookkeeping
  drifted after training.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import make_complex
from repro.index.base import CandidateBatch, CandidateIndex
from repro.kg.synthetic import SyntheticKGConfig, generate_synthetic_kg
from repro.serving import LinkPredictor, TopKResult

NUM_ENTITIES_HINT = 120
BUDGET = 8


@pytest.fixture(scope="module")
def dataset():
    return generate_synthetic_kg(
        SyntheticKGConfig(num_entities=NUM_ENTITIES_HINT, num_clusters=6, seed=11)
    )


@pytest.fixture()
def model(dataset):
    return make_complex(
        dataset.num_entities,
        dataset.num_relations,
        BUDGET,
        np.random.default_rng(3),
    )


class DegeneratePartitionIndex(CandidateIndex):
    """An index whose partitions can come back *empty*.

    Mimics a degenerate IVF partition (every probed cell empty) without
    the IVF's own full-range fallback: queries whose anchor id is even
    get an empty shortlist, odd anchors get a small ascending one.  This
    is contract-legal — ``CandidateBatch`` rows may be empty — so the
    predictor must serve all-pad rows instead of crashing.
    """

    kind = "degenerate"

    def __init__(self, model, empty_for_all: bool = False):
        super().__init__(model)
        self.empty_for_all = empty_for_all

    def candidate_lists(self, anchors, relations, side, nprobe=None):
        anchors = np.atleast_1d(np.asarray(anchors, dtype=np.int64))
        rows = []
        for anchor in anchors:
            if self.empty_for_all or int(anchor) % 2 == 0:
                rows.append(np.empty(0, dtype=np.int64))
            else:
                rows.append(np.arange(5, dtype=np.int64))
        return CandidateBatch(
            rows=rows, covers_all=False, num_scored=sum(len(r) for r in rows)
        )

    def invalidate(self):
        self._version = self.model.scoring_version


class TestEmptyShortlist:
    def test_all_empty_shortlists_return_all_pad_rows(self, model, dataset):
        predictor = LinkPredictor(
            model, dataset, index=DegeneratePartitionIndex(model, empty_for_all=True)
        )
        result = predictor.top_k_tails([0, 2], [0, 1], k=4)
        assert result.ids.shape == (2, 4)
        assert (result.ids == -1).all()
        assert np.isneginf(result.scores).all()

    def test_mixed_empty_and_short_rows(self, model, dataset):
        """Empty rows pad fully; nonempty rows still rank their shortlist."""
        predictor = LinkPredictor(model, dataset, index=DegeneratePartitionIndex(model))
        result = predictor.top_k_tails([2, 3], [0, 0], k=4)
        assert (result.ids[0] == -1).all()
        assert np.isneginf(result.scores[0]).all()
        # The odd-anchor row ranks candidates {0..4} with true model scores.
        assert set(result.ids[1]) <= set(range(5))
        expected = model.score_triples(
            np.full(4, 3), result.ids[1], np.zeros(4, dtype=np.int64)
        )
        np.testing.assert_allclose(result.scores[1], expected, atol=1e-10)

    def test_filtered_query_with_empty_shortlist(self, model, dataset):
        predictor = LinkPredictor(
            model, dataset, index=DegeneratePartitionIndex(model, empty_for_all=True)
        )
        result = predictor.top_k_tails([4], [0], k=3, filtered=True)
        assert (result.ids == -1).all()

    def test_empty_shortlist_counts_as_a_query(self, model, dataset):
        predictor = LinkPredictor(
            model, dataset, index=DegeneratePartitionIndex(model, empty_for_all=True)
        )
        predictor.top_k_tails([0, 2, 4], [0, 0, 0], k=2)
        assert predictor.index_stats.queries == 3
        assert predictor.index_stats.entities_scored == 0


class TestLabeledDropsPads:
    def test_pad_ids_dropped_in_every_row(self, dataset):
        result = TopKResult(
            ids=np.array([[3, 1, -1], [-1, -1, -1], [2, -1, -1]]),
            scores=np.array(
                [[2.0, 1.0, -np.inf], [-np.inf, -np.inf, -np.inf], [0.5, -np.inf, -np.inf]]
            ),
        )
        labeled = result.labeled(dataset.entities)
        assert [len(row) for row in labeled] == [2, 0, 1]
        assert labeled[0][0][0] == dataset.entities.name(3)
        assert labeled[2][0][0] == dataset.entities.name(2)

    def test_pad_never_resolves_to_last_entity(self, dataset):
        """The pre-fix code named the *last* vocabulary entry for -1."""
        last = dataset.entities.name(dataset.num_entities - 1)
        result = TopKResult(
            ids=np.array([[0, -1]]), scores=np.array([[1.0, -np.inf]])
        )
        names = [name for row in result.labeled(dataset.entities) for name, _ in row]
        assert last not in names

    def test_predict_drops_pads_via_labeled(self, model, dataset):
        predictor = LinkPredictor(model, dataset, index=DegeneratePartitionIndex(model))
        predictions = predictor.predict(
            head=dataset.entities.name(1),
            relation=dataset.relations.name(0),
            k=20,
        )
        # Odd-id head: 5-candidate shortlist, minus filtered entries.
        assert 0 < len(predictions) <= 5
        assert all(name in dataset.entities for name, _ in predictions)


class TestVersionSyncWithoutCache:
    def test_model_version_tracks_training_with_cache_disabled(self, model):
        predictor = LinkPredictor(model, cache_size=0)
        assert predictor.model_version == model.scoring_version
        model._bump_scoring_version()
        assert predictor.model_version != model.scoring_version
        predictor.top_k_tails([0], [0], k=3)
        assert predictor.model_version == model.scoring_version

    def test_relation_queries_sync_too(self, model):
        predictor = LinkPredictor(model, cache_size=0)
        model._bump_scoring_version()
        predictor.top_k_relations([0], [1], k=2)
        assert predictor.model_version == model.scoring_version

    def test_staleness_through_training(self, model, dataset):
        """Train between queries: the uncached predictor must re-sync and
        its answers must match a freshly constructed predictor's."""
        from repro.training.trainer import Trainer, TrainingConfig

        predictor = LinkPredictor(model, dataset, cache_size=0)
        before = predictor.top_k_tails([0, 1], [0, 0], k=5)
        Trainer(
            dataset,
            TrainingConfig(
                epochs=2, batch_size=256, validate_every=10**9, patience=10**9, seed=5
            ),
        ).train(model)
        after = predictor.top_k_tails([0, 1], [0, 0], k=5)
        assert predictor.model_version == model.scoring_version
        fresh = LinkPredictor(model, dataset, cache_size=0).top_k_tails(
            [0, 1], [0, 0], k=5
        )
        np.testing.assert_array_equal(after.ids, fresh.ids)
        np.testing.assert_array_equal(after.scores, fresh.scores)
        assert not np.array_equal(before.scores, after.scores)

    def test_clear_cache_bookkeeping_consistent_without_cache(self, model):
        predictor = LinkPredictor(model, cache_size=0)
        model._bump_scoring_version()
        predictor.clear_cache()
        assert predictor.model_version == model.scoring_version
        predictor.top_k_tails([0], [0], k=2)
        assert predictor.model_version == model.scoring_version
