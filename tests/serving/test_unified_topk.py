"""The unified ``LinkPredictor.top_k(side=...)`` entry point.

Satellite contract: ``top_k_tails``/``top_k_heads``/``top_k_relations``
are thin delegating wrappers over one ``top_k`` with shared knobs
(``k``, ``filtered``, ``exact``); the unified path is bit-identical to
the legacy names, and side-incompatible knobs are rejected up front.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import make_complex
from repro.errors import ServingError
from repro.serving import LinkPredictor

pytestmark = pytest.mark.ingest

BUDGET = 16


@pytest.fixture(scope="module")
def predictor(tiny_dataset):
    model = make_complex(
        tiny_dataset.num_entities,
        tiny_dataset.num_relations,
        BUDGET,
        np.random.default_rng(21),
    )
    return LinkPredictor(model, tiny_dataset)


@pytest.fixture(scope="module")
def queries(tiny_dataset):
    rng = np.random.default_rng(0)
    return (
        rng.integers(0, tiny_dataset.num_entities, size=8),
        rng.integers(0, tiny_dataset.num_entities, size=8),
        rng.integers(0, tiny_dataset.num_relations, size=8),
    )


class TestUnifiedEqualsWrappers:
    @pytest.mark.parametrize("filtered", [False, True])
    def test_tail_side(self, predictor, queries, filtered):
        heads, _, relations = queries
        unified = predictor.top_k(heads, relations, side="tail", k=7, filtered=filtered)
        legacy = predictor.top_k_tails(heads, relations, k=7, filtered=filtered)
        np.testing.assert_array_equal(unified.ids, legacy.ids)
        np.testing.assert_array_equal(unified.scores, legacy.scores)

    @pytest.mark.parametrize("filtered", [False, True])
    def test_head_side(self, predictor, queries, filtered):
        _, tails, relations = queries
        unified = predictor.top_k(tails, relations, side="head", k=7, filtered=filtered)
        legacy = predictor.top_k_heads(tails, relations, k=7, filtered=filtered)
        np.testing.assert_array_equal(unified.ids, legacy.ids)
        np.testing.assert_array_equal(unified.scores, legacy.scores)

    def test_relation_side(self, predictor, queries):
        heads, tails, _ = queries
        unified = predictor.top_k(heads, tails, side="relation", k=3)
        legacy = predictor.top_k_relations(heads, tails, k=3)
        np.testing.assert_array_equal(unified.ids, legacy.ids)
        np.testing.assert_array_equal(unified.scores, legacy.scores)

    def test_exact_knob_passes_through(self, predictor, queries):
        heads, _, relations = queries
        unified = predictor.top_k(heads, relations, side="tail", k=5, exact=True)
        legacy = predictor.top_k_tails(heads, relations, k=5, exact=True)
        np.testing.assert_array_equal(unified.ids, legacy.ids)


class TestWrappersDelegate:
    def test_each_wrapper_routes_through_top_k(self, predictor, monkeypatch):
        calls = []
        original = LinkPredictor.top_k

        def spy(self, anchors, others, **kwargs):
            calls.append(kwargs.get("side"))
            return original(self, anchors, others, **kwargs)

        monkeypatch.setattr(LinkPredictor, "top_k", spy)
        predictor.top_k_tails([0], [0], k=2)
        predictor.top_k_heads([0], [0], k=2)
        predictor.top_k_relations([0], [1], k=2)
        assert calls == ["tail", "head", "relation"]


class TestValidation:
    def test_unknown_side_rejected(self, predictor):
        with pytest.raises(ServingError, match="unknown side"):
            predictor.top_k([0], [0], side="edge", k=2)

    def test_k_below_one_rejected_for_every_side(self, predictor):
        for side in ("tail", "head", "relation"):
            with pytest.raises(ServingError, match="k must be"):
                predictor.top_k([0], [0], side=side, k=0)

    def test_relation_side_rejects_filtered(self, predictor):
        with pytest.raises(ServingError, match="filtered"):
            predictor.top_k([0], [1], side="relation", k=2, filtered=True)

    def test_relation_side_rejects_candidates(self, predictor):
        with pytest.raises(ServingError, match="candidates"):
            predictor.top_k(
                [0], [1], side="relation", k=2, candidates=np.array([0, 1])
            )
