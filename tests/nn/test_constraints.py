"""Unit tests for :mod:`repro.nn.constraints`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.constraints import MaxNormConstraint, UnitNormConstraint


class TestUnitNorm:
    def test_normalises_all_rows(self, rng):
        table = rng.normal(size=(10, 3, 4)) * 5.0
        UnitNormConstraint().apply(table)
        assert np.allclose(np.linalg.norm(table, axis=-1), 1.0)

    def test_normalises_only_selected_rows(self, rng):
        table = rng.normal(size=(5, 4)) * 5.0
        before = table.copy()
        UnitNormConstraint().apply(table, rows=np.array([1, 3]))
        assert np.allclose(np.linalg.norm(table[[1, 3]], axis=-1), 1.0)
        assert np.array_equal(table[[0, 2, 4]], before[[0, 2, 4]])

    def test_zero_vectors_left_alone(self):
        table = np.zeros((2, 3))
        UnitNormConstraint().apply(table)
        assert np.all(table == 0.0)

    def test_violation_metric(self):
        table = np.array([[3.0, 4.0]])  # norm 5
        assert UnitNormConstraint().violation(table) == pytest.approx(4.0)
        UnitNormConstraint().apply(table)
        assert UnitNormConstraint().violation(table) == pytest.approx(0.0)

    def test_idempotent(self, rng):
        table = rng.normal(size=(6, 8))
        constraint = UnitNormConstraint()
        constraint.apply(table)
        once = table.copy()
        constraint.apply(table)
        assert np.allclose(table, once)

    def test_bad_eps_raises(self):
        with pytest.raises(ConfigError):
            UnitNormConstraint(eps=0.0)


class TestMaxNorm:
    def test_long_vectors_clipped(self):
        table = np.array([[3.0, 4.0], [0.1, 0.0]])
        MaxNormConstraint(max_norm=1.0).apply(table)
        assert np.linalg.norm(table[0]) == pytest.approx(1.0)
        # short vectors unchanged
        assert np.allclose(table[1], [0.1, 0.0])

    def test_row_restriction(self):
        table = np.array([[10.0, 0.0], [10.0, 0.0]])
        MaxNormConstraint(max_norm=1.0).apply(table, rows=np.array([0]))
        assert np.linalg.norm(table[0]) == pytest.approx(1.0)
        assert np.linalg.norm(table[1]) == pytest.approx(10.0)

    def test_bad_max_norm_raises(self):
        with pytest.raises(ConfigError):
            MaxNormConstraint(max_norm=0.0)
