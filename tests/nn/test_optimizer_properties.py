"""Property-based tests of optimizer semantics.

The lazy-sparse update paths are subtle (per-row bias correction), so we
pin them with randomized sequences: for rows touched in *every* step,
sparse and dense updates must coincide exactly — that's the definition
of lazy semantics.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.optimizers import Adagrad, Adam, SGD

ROWS, COLS = 6, 3

grad_sequences = st.lists(
    st.lists(st.floats(-2, 2, allow_nan=False), min_size=ROWS * COLS,
             max_size=ROWS * COLS),
    min_size=1,
    max_size=5,
)


@pytest.mark.parametrize("optimizer_cls", [SGD, Adagrad, Adam])
class TestSparseDenseEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(grads=grad_sequences)
    def test_all_rows_touched_every_step(self, optimizer_cls, grads):
        dense_theta = np.ones((ROWS, COLS))
        sparse_theta = np.ones((ROWS, COLS))
        dense_opt = optimizer_cls(learning_rate=0.05)
        sparse_opt = optimizer_cls(learning_rate=0.05)
        all_rows = np.arange(ROWS)
        for flat in grads:
            grad = np.asarray(flat).reshape(ROWS, COLS)
            dense_opt.step_dense("p", dense_theta, grad)
            sparse_opt.step_sparse("p", sparse_theta, all_rows, grad)
        assert np.allclose(dense_theta, sparse_theta, atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(grads=grad_sequences)
    def test_untouched_rows_never_move(self, optimizer_cls, grads):
        theta = np.ones((ROWS, COLS))
        opt = optimizer_cls(learning_rate=0.05)
        touched = np.array([0, 2])
        for flat in grads:
            grad = np.asarray(flat).reshape(ROWS, COLS)[: len(touched)]
            opt.step_sparse("p", theta, touched, grad)
        untouched = [r for r in range(ROWS) if r not in set(touched.tolist())]
        assert np.all(theta[untouched] == 1.0)


class TestLazyAdamSemantics:
    def test_interleaved_rows_match_independent_histories(self):
        """A row updated on steps {1, 3} must end up exactly as if it were
        the only row and was updated on its own steps 1 and 2 — per-row
        step counting, the SparseAdam contract."""
        lr = 0.07
        g1, g2 = np.array([[0.5]]), np.array([[-1.5]])

        shared = np.zeros((2, 1))
        opt = Adam(learning_rate=lr)
        opt.step_sparse("p", shared, np.array([0]), g1)          # step 1: row 0
        opt.step_sparse("p", shared, np.array([1]), g1)          # row 1's step 1
        opt.step_sparse("p", shared, np.array([0, 1]), np.vstack([g2, g2]))

        solo = np.zeros((1, 1))
        solo_opt = Adam(learning_rate=lr)
        solo_opt.step_sparse("q", solo, np.array([0]), g1)
        solo_opt.step_sparse("q", solo, np.array([0]), g2)

        assert shared[0, 0] == pytest.approx(solo[0, 0])
        assert shared[1, 0] == pytest.approx(solo[0, 0])

    def test_state_is_per_parameter_name(self):
        opt = Adam(learning_rate=0.1)
        a = np.zeros((2, 1))
        b = np.zeros((2, 1))
        opt.step_sparse("a", a, np.array([0]), np.array([[1.0]]))
        opt.step_sparse("b", b, np.array([0]), np.array([[1.0]]))
        # identical first steps because state is independent
        assert a[0, 0] == pytest.approx(b[0, 0])
