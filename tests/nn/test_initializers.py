"""Unit tests for :mod:`repro.nn.initializers`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.initializers import (
    get_initializer,
    normal,
    uniform,
    unit_normalized,
    xavier_uniform,
)


class TestXavierUniform:
    def test_shape(self, rng):
        assert xavier_uniform((10, 2, 8), rng).shape == (10, 2, 8)

    def test_bound_respected(self, rng):
        table = xavier_uniform((1000, 16), rng)
        bound = np.sqrt(3.0 / 16)
        assert np.abs(table).max() <= bound

    def test_empty_shape_raises(self, rng):
        with pytest.raises(ConfigError):
            xavier_uniform((), rng)

    def test_deterministic_given_seed(self):
        a = xavier_uniform((5, 4), np.random.default_rng(1))
        b = xavier_uniform((5, 4), np.random.default_rng(1))
        assert np.array_equal(a, b)


class TestNormal:
    def test_std_approximately_respected(self, rng):
        table = normal((20000,), rng, std=0.5)
        assert abs(table.std() - 0.5) < 0.02

    def test_bad_std_raises(self, rng):
        with pytest.raises(ConfigError):
            normal((3,), rng, std=0.0)


class TestUniform:
    def test_range(self, rng):
        table = uniform((1000,), rng, low=-2.0, high=3.0)
        assert table.min() >= -2.0
        assert table.max() < 3.0

    def test_bad_range_raises(self, rng):
        with pytest.raises(ConfigError):
            uniform((3,), rng, low=1.0, high=1.0)


class TestUnitNormalized:
    def test_last_axis_unit_norm(self, rng):
        table = unit_normalized((50, 3, 7), rng)
        norms = np.linalg.norm(table, axis=-1)
        assert np.allclose(norms, 1.0)

    def test_matches_paper_constraint_at_init(self, rng):
        # Entity embeddings start on the unit-norm manifold of §5.3.
        table = unit_normalized((10, 4), rng)
        assert np.allclose(np.linalg.norm(table, axis=-1), 1.0)


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["xavier_uniform", "normal", "uniform", "unit_normalized"]
    )
    def test_lookup(self, name, rng):
        init = get_initializer(name)
        assert init((3, 2), rng).shape == (3, 2)

    def test_unknown_raises(self):
        with pytest.raises(ConfigError, match="unknown initializer"):
            get_initializer("nope")
