"""Unit tests for the reverse-mode autodiff engine.

Every op's backward pass is checked against central finite differences;
the engine is the reference implementation that certifies the analytic
gradients used on the training hot path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.nn.autodiff import Tensor, numeric_gradient


def check_unary(op, x, atol=1e-6):
    """Finite-difference check for a scalar-valued composite y = op(x).sum()."""
    tensor = Tensor(x.copy(), requires_grad=True)
    out = op(tensor).sum()
    out.backward()

    def scalar_fn(values):
        return float(op(Tensor(values)).sum().data)

    numeric = numeric_gradient(scalar_fn, x.copy())
    assert np.allclose(tensor.grad, numeric, atol=atol), (tensor.grad, numeric)


class TestElementwiseOps:
    @pytest.mark.parametrize(
        "op",
        [
            lambda t: t * t,
            lambda t: t + 2.0,
            lambda t: 3.0 - t,
            lambda t: t / 2.5,
            lambda t: -t,
            lambda t: t.exp(),
            lambda t: t.tanh(),
            lambda t: t.sigmoid(),
            lambda t: t.softplus(),
            lambda t: t.relu(),
            lambda t: t.abs(),
            lambda t: t**3,
        ],
    )
    def test_backward_matches_finite_differences(self, op, rng):
        x = rng.normal(size=(4, 3)) + 0.1  # offset keeps |x|>0 a.s. for abs/relu
        check_unary(op, x)

    def test_log_backward(self, rng):
        x = np.abs(rng.normal(size=(5,))) + 0.5
        check_unary(lambda t: t.log(), x)

    def test_division_by_tensor(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(np.abs(rng.normal(size=(3,))) + 1.0, requires_grad=True)
        (a / b).sum().backward()
        assert np.allclose(a.grad, 1.0 / b.data)
        assert np.allclose(b.grad, -a.data / b.data**2)


class TestBroadcasting:
    def test_broadcast_add_sums_gradient(self):
        a = Tensor(np.zeros((3, 2)), requires_grad=True)
        b = Tensor(np.zeros(2), requires_grad=True)
        (a + b).sum().backward()
        assert np.all(a.grad == 1.0)
        assert np.all(b.grad == 3.0)

    def test_broadcast_mul(self):
        a = Tensor(np.ones((4, 1)), requires_grad=True)
        b = Tensor(2.0 * np.ones((1, 5)), requires_grad=True)
        (a * b).sum().backward()
        assert np.all(a.grad == 10.0)
        assert np.all(b.grad == 4.0)

    def test_scalar_lift(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (2.0 * a).sum().backward()
        assert np.all(a.grad == 2.0)


class TestMatmulAndStructure:
    def test_matmul_gradients(self, rng):
        a_val = rng.normal(size=(3, 4))
        b_val = rng.normal(size=(4, 2))
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a @ b).sum().backward()
        assert np.allclose(a.grad, np.ones((3, 2)) @ b_val.T)
        assert np.allclose(b.grad, a_val.T @ np.ones((3, 2)))

    def test_matmul_requires_2d(self):
        with pytest.raises(ModelError):
            Tensor(np.ones(3)) @ Tensor(np.ones(3))

    def test_reshape_round_trip_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        x.reshape(3, 4).sum().backward()
        assert x.grad.shape == (2, 6)
        assert np.all(x.grad == 1.0)

    def test_take_rows_accumulates_duplicates(self):
        table = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        gathered = table.take_rows(np.array([0, 0, 2]))
        gathered.sum().backward()
        assert table.grad.tolist() == [[2.0, 2.0], [0.0, 0.0], [1.0, 1.0]]

    def test_concat_splits_gradient(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        joined = a.concat(b, axis=-1)
        (joined * joined).sum().backward()
        assert np.allclose(a.grad, 2 * a.data)
        assert np.allclose(b.grad, 2 * b.data)

    def test_sum_with_axis_and_mean(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        x.sum(axis=1).sum().backward()
        assert np.all(x.grad == 1.0)
        y = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        y.mean().backward()
        assert np.allclose(y.grad, 1.0 / 12.0)


class TestEngineSemantics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (x * x + x).sum().backward()  # d/dx (x² + x) = 2x + 1
        assert x.grad[0] == pytest.approx(5.0)

    def test_no_grad_for_non_required(self):
        x = Tensor(np.array([1.0]))
        y = Tensor(np.array([1.0]), requires_grad=True)
        (x * y).sum().backward()
        assert x.grad is None
        assert y.grad is not None

    def test_backward_requires_scalar_without_seed(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ModelError, match="scalar"):
            (x * 2).backward()

    def test_backward_with_explicit_gradient(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 3.0).backward(np.array([1.0, 2.0, 3.0]))
        assert x.grad.tolist() == [3.0, 6.0, 9.0]

    def test_gradient_shape_mismatch_raises(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ModelError, match="shape"):
            (x * 1.0).backward(np.ones(4))

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * x).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        # z = a*b with a = x+1 and b = x*2: dz/dx = b + 2a
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x + 1.0
        b = x * 2.0
        (a * b).sum().backward()
        assert x.grad[0] == pytest.approx(b.data[0] + 2 * a.data[0])


@settings(deadline=None, max_examples=25)
@given(
    st.lists(st.floats(-3, 3, allow_nan=False), min_size=2, max_size=6),
)
def test_property_mlp_composite_gradient(values):
    """A small MLP-like composite agrees with finite differences."""
    x = np.asarray(values)
    w = np.linspace(-1, 1, len(values))

    def forward(x_arr):
        t = Tensor(x_arr, requires_grad=False)
        return float(((t * Tensor(w)).tanh().sum()).data)

    tensor = Tensor(x.copy(), requires_grad=True)
    (tensor * Tensor(w)).tanh().sum().backward()
    numeric = numeric_gradient(forward, x.copy())
    assert np.allclose(tensor.grad, numeric, atol=1e-5)
