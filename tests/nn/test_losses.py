"""Unit tests for :mod:`repro.nn.losses`, incl. gradient finite-difference checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.nn.autodiff import numeric_gradient
from repro.nn.losses import (
    LogisticLoss,
    MarginRankingLoss,
    binary_cross_entropy_from_logits,
    sigmoid,
    softplus,
)

finite_floats = st.floats(-30, 30, allow_nan=False)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == 0.5

    def test_symmetry(self):
        x = np.linspace(-10, 10, 21)
        assert np.allclose(sigmoid(x) + sigmoid(-x), 1.0)

    def test_extreme_values_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)

    @given(st.lists(finite_floats, min_size=1, max_size=20))
    def test_property_range(self, values):
        out = sigmoid(np.asarray(values))
        assert np.all(out >= 0.0) and np.all(out <= 1.0)


class TestSoftplus:
    def test_matches_naive_formula_in_safe_range(self):
        x = np.linspace(-10, 10, 41)
        assert np.allclose(softplus(x), np.log1p(np.exp(x)))

    def test_large_input_linear(self):
        assert softplus(np.array([800.0]))[0] == pytest.approx(800.0)

    def test_large_negative_is_zero(self):
        assert softplus(np.array([-800.0]))[0] == pytest.approx(0.0)


class TestLogisticLoss:
    def test_perfect_positive_small_loss(self):
        loss = LogisticLoss()
        assert loss.value(np.array([20.0]), np.array([1.0])) < 1e-6

    def test_wrong_positive_large_loss(self):
        loss = LogisticLoss()
        assert loss.value(np.array([-20.0]), np.array([1.0])) > 19.0

    def test_symmetric_in_label_sign(self):
        loss = LogisticLoss()
        assert loss.value(np.array([3.0]), np.array([1.0])) == pytest.approx(
            loss.value(np.array([-3.0]), np.array([-1.0]))
        )

    def test_gradient_matches_finite_differences(self):
        loss = LogisticLoss()
        scores = np.array([0.5, -1.2, 3.0, 0.0])
        labels = np.array([1.0, -1.0, 1.0, -1.0])
        analytic = loss.grad_score(scores, labels)
        numeric = numeric_gradient(lambda s: loss.value(s, labels), scores.copy())
        assert np.allclose(analytic, numeric, atol=1e-7)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigError):
            LogisticLoss().value(np.zeros(3), np.ones(2))

    def test_bad_labels_raise(self):
        with pytest.raises(ConfigError, match=r"\+/-1"):
            LogisticLoss().value(np.zeros(2), np.array([0.0, 1.0]))

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            LogisticLoss().value(np.array([]), np.array([]))

    @given(st.lists(finite_floats, min_size=1, max_size=10))
    def test_property_loss_nonnegative(self, values):
        scores = np.asarray(values)
        labels = np.where(scores >= 0, 1.0, -1.0)
        assert LogisticLoss().value(scores, labels) >= 0.0


class TestMarginRankingLoss:
    def test_satisfied_margin_zero_loss(self):
        loss = MarginRankingLoss(margin=1.0)
        assert loss.value(np.array([5.0]), np.array([0.0])) == 0.0

    def test_violated_margin_positive_loss(self):
        loss = MarginRankingLoss(margin=1.0)
        assert loss.value(np.array([0.0]), np.array([0.0])) == pytest.approx(1.0)

    def test_gradients_match_finite_differences(self):
        loss = MarginRankingLoss(margin=1.0)
        pos = np.array([0.2, 2.0, -0.5])
        neg = np.array([0.1, -3.0, 0.5])
        grad_pos, grad_neg = loss.grad_pair(pos, neg)
        num_pos = numeric_gradient(lambda p: loss.value(p, neg), pos.copy())
        num_neg = numeric_gradient(lambda n: loss.value(pos, n), neg.copy())
        assert np.allclose(grad_pos, num_pos, atol=1e-7)
        assert np.allclose(grad_neg, num_neg, atol=1e-7)

    def test_bad_margin_raises(self):
        with pytest.raises(ConfigError):
            MarginRankingLoss(margin=0.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigError):
            MarginRankingLoss().value(np.zeros(2), np.zeros(3))


class TestBCE:
    def test_equivalent_to_logistic_loss(self):
        scores = np.array([0.3, -1.5, 2.0])
        targets = np.array([1.0, 0.0, 1.0])
        labels = 2.0 * targets - 1.0
        assert binary_cross_entropy_from_logits(scores, targets) == pytest.approx(
            LogisticLoss().value(scores, labels)
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigError):
            binary_cross_entropy_from_logits(np.zeros(2), np.zeros(3))
