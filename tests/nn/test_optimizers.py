"""Unit tests for :mod:`repro.nn.optimizers`.

The key property: the sparse path must produce the same result as the
dense path restricted to the touched rows (lazy semantics), and Adam's
per-row bias correction must track per-row step counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, TrainingError
from repro.nn.optimizers import SGD, Adagrad, Adam, aggregate_rows, make_optimizer


class TestAggregateRows:
    def test_unique_rows_pass_through(self):
        rows, grads = aggregate_rows(np.array([2, 0]), np.array([[1.0], [2.0]]))
        assert rows.tolist() == [0, 2]
        assert grads.tolist() == [[2.0], [1.0]]

    def test_duplicates_summed(self):
        rows, grads = aggregate_rows(
            np.array([1, 1, 3]), np.array([[1.0, 2.0], [10.0, 20.0], [5.0, 5.0]])
        )
        assert rows.tolist() == [1, 3]
        assert grads.tolist() == [[11.0, 22.0], [5.0, 5.0]]

    def test_multiaxis_grads(self):
        rows, grads = aggregate_rows(np.array([0, 0]), np.ones((2, 3, 4)))
        assert grads.shape == (1, 3, 4)
        assert np.all(grads == 2.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(TrainingError):
            aggregate_rows(np.array([0]), np.ones((2, 3)))


class TestSGD:
    def test_dense_step(self):
        opt = SGD(learning_rate=0.5)
        theta = np.array([1.0, 2.0])
        opt.step_dense("p", theta, np.array([1.0, -2.0]))
        assert theta.tolist() == [0.5, 3.0]

    def test_sparse_step_touches_only_rows(self):
        opt = SGD(learning_rate=1.0)
        theta = np.zeros((4, 2))
        opt.step_sparse("p", theta, np.array([1, 3]), np.ones((2, 2)))
        assert np.all(theta[[0, 2]] == 0.0)
        assert np.all(theta[[1, 3]] == -1.0)

    def test_bad_lr_raises(self):
        with pytest.raises(ConfigError):
            SGD(learning_rate=0.0)


class TestAdagrad:
    def test_accumulates(self):
        opt = Adagrad(learning_rate=1.0)
        theta = np.array([0.0])
        opt.step_dense("p", theta, np.array([2.0]))
        first = theta.copy()
        opt.step_dense("p", theta, np.array([2.0]))
        # second step must be smaller in magnitude than the first
        assert abs(theta[0] - first[0]) < abs(first[0])

    def test_sparse_matches_dense_on_touched_rows(self):
        grads = np.array([[0.5, -1.0], [2.0, 0.1]])
        dense_theta = np.ones((5, 2))
        sparse_theta = np.ones((5, 2))
        dense_opt = Adagrad(learning_rate=0.1)
        sparse_opt = Adagrad(learning_rate=0.1)
        full_grad = np.zeros((5, 2))
        full_grad[[1, 3]] = grads
        dense_opt.step_dense("p", dense_theta, full_grad)
        sparse_opt.step_sparse("p", sparse_theta, np.array([1, 3]), grads)
        assert np.allclose(dense_theta[[1, 3]], sparse_theta[[1, 3]])
        # untouched rows identical to init
        assert np.all(sparse_theta[[0, 2, 4]] == 1.0)


class TestAdam:
    def test_first_dense_step_is_lr_sized(self):
        opt = Adam(learning_rate=0.1)
        theta = np.array([0.0])
        opt.step_dense("p", theta, np.array([3.0]))
        # bias-corrected first Adam step ~ lr * sign(grad)
        assert theta[0] == pytest.approx(-0.1, rel=1e-6)

    def test_sparse_first_step_matches_dense(self):
        grads = np.array([[1.0, -2.0]])
        a = np.zeros((3, 2))
        b = np.zeros((3, 2))
        Adam(learning_rate=0.01).step_dense("p", a, np.vstack([np.zeros((1, 2)), grads, np.zeros((1, 2))]))
        Adam(learning_rate=0.01).step_sparse("p", b, np.array([1]), grads)
        assert np.allclose(a[1], b[1], atol=1e-12)

    def test_lazy_rows_keep_own_step_counts(self):
        opt = Adam(learning_rate=0.1)
        theta = np.zeros((2, 1))
        # row 0 updated twice, row 1 once; if bias correction used a global
        # step, row 1's first update would be wrongly scaled.
        opt.step_sparse("p", theta, np.array([0]), np.array([[1.0]]))
        opt.step_sparse("p", theta, np.array([0, 1]), np.array([[1.0], [1.0]]))
        fresh = np.zeros((1, 1))
        Adam(learning_rate=0.1).step_sparse("q", fresh, np.array([0]), np.array([[1.0]]))
        assert theta[1, 0] == pytest.approx(fresh[0, 0])

    def test_converges_on_quadratic(self):
        opt = Adam(learning_rate=0.05)
        theta = np.array([5.0])
        for _ in range(800):
            opt.step_dense("p", theta, 2.0 * theta)
        assert abs(theta[0]) < 1e-2

    def test_bad_betas_raise(self):
        with pytest.raises(ConfigError):
            Adam(beta1=1.0)
        with pytest.raises(ConfigError):
            Adam(beta2=-0.1)

    def test_reset_clears_state(self):
        opt = Adam(learning_rate=0.1)
        theta = np.array([0.0])
        opt.step_dense("p", theta, np.array([1.0]))
        opt.reset()
        assert opt._state == {}


class TestFactory:
    @pytest.mark.parametrize("name,cls", [("sgd", SGD), ("adagrad", Adagrad), ("adam", Adam)])
    def test_make(self, name, cls):
        opt = make_optimizer(name, 0.01)
        assert isinstance(opt, cls)
        assert opt.learning_rate == 0.01

    def test_unknown_raises(self):
        with pytest.raises(ConfigError, match="unknown optimizer"):
            make_optimizer("rmsprop", 0.1)


class TestScatterAccumulate:
    """The fast scatter paths must match the aggregate_rows oracle."""

    def test_matches_oracle_with_duplicates(self, rng=np.random.default_rng(0)):
        from repro.nn.optimizers import scatter_accumulate

        indices = rng.integers(0, 12, 200)
        grads = rng.normal(size=(200, 3, 4))
        rows, summed = scatter_accumulate(indices, grads)
        rows_ref, summed_ref = aggregate_rows(indices, grads)
        assert np.array_equal(rows, rows_ref)
        assert np.allclose(summed, summed_ref, atol=1e-12)

    def test_no_duplicates_is_pure_permutation(self):
        from repro.nn.optimizers import scatter_accumulate

        indices = np.array([7, 1, 4])
        grads = np.array([[1.0], [2.0], [3.0]])
        rows, summed = scatter_accumulate(indices, grads)
        assert rows.tolist() == [1, 4, 7]
        assert summed.ravel().tolist() == [2.0, 3.0, 1.0]

    def test_empty_batch(self):
        from repro.nn.optimizers import scatter_accumulate

        rows, summed = scatter_accumulate(np.array([], dtype=np.int64), np.zeros((0, 2)))
        assert len(rows) == 0 and summed.shape == (0, 2)

    def test_mismatched_lengths_raise(self):
        from repro.nn.optimizers import scatter_accumulate

        with pytest.raises(TrainingError):
            scatter_accumulate(np.array([0]), np.ones((2, 3)))

    def test_transposed_groups_match_oracle(self, rng=np.random.default_rng(1)):
        from repro.nn.optimizers import scatter_accumulate_transposed

        heads = rng.integers(0, 9, 40)
        tails = rng.integers(0, 9, 55)
        grad_h = rng.normal(size=(2, 40, 3))
        grad_t = rng.normal(size=(2, 55, 3))
        rows, summed = scatter_accumulate_transposed((heads, tails), (grad_h, grad_t))
        flat = np.concatenate([grad_h.transpose(1, 0, 2), grad_t.transpose(1, 0, 2)])
        rows_ref, summed_ref = aggregate_rows(np.concatenate([heads, tails]), flat)
        assert np.array_equal(rows, rows_ref)
        assert np.allclose(summed, summed_ref, atol=1e-12)

    def test_transposed_out_buffer_is_used(self, rng=np.random.default_rng(2)):
        from repro.nn.optimizers import scatter_accumulate_transposed

        indices = rng.integers(0, 5, 30)
        grads = rng.normal(size=(1, 30, 2))
        out = np.empty((10, 1, 2))
        rows, summed = scatter_accumulate_transposed((indices,), (grads,), out=out)
        assert summed.base is out
        _, reference = scatter_accumulate_transposed((indices,), (grads,))
        assert np.allclose(summed, reference, atol=1e-12)

    def test_transposed_shape_validation(self):
        from repro.nn.optimizers import scatter_accumulate_transposed

        with pytest.raises(TrainingError):
            scatter_accumulate_transposed((np.array([0, 1]),), (np.zeros((2, 3, 4)),))


class TestFusedSparseSteps:
    """step_sparse_fused must be interchangeable with step_sparse."""

    @pytest.mark.parametrize("name", ["sgd", "adagrad", "adam"])
    def test_matches_reference_across_steps(self, name, rng=np.random.default_rng(3)):
        reference = make_optimizer(name, 0.1)
        fused = make_optimizer(name, 0.1)
        theta_ref = rng.normal(size=(700, 2, 3))
        theta_fused = theta_ref.copy()
        for _ in range(4):
            # > _FUSED_UPDATE_BLOCK_ROWS unique rows to cover multi-block
            rows = np.unique(rng.integers(0, 700, 600))
            grads = rng.normal(size=(len(rows), 2, 3))
            reference.step_sparse("p", theta_ref, rows, grads.copy())
            fused.step_sparse_fused("p", theta_fused, rows, grads.copy())
            assert np.allclose(theta_ref, theta_fused, atol=1e-12)

    def test_adam_fused_tracks_per_row_steps(self):
        reference = Adam(learning_rate=0.05)
        fused = Adam(learning_rate=0.05)
        theta_ref = np.zeros((3, 2))
        theta_fused = np.zeros((3, 2))
        g = np.ones((1, 2))
        # row 0 stepped twice, row 2 once: bias corrections must differ per row
        for rows in ([0], [0, 2]):
            reference.step_sparse("p", theta_ref, np.array(rows), np.ones((len(rows), 2)))
            fused.step_sparse_fused("p", theta_fused, np.array(rows), np.ones((len(rows), 2)))
        assert np.allclose(theta_ref, theta_fused, atol=1e-12)
        assert fused._state["p"]["row_steps"].tolist() == [2, 0, 1]

    def test_fused_clobber_contract(self, rng=np.random.default_rng(4)):
        # step_sparse_fused may overwrite row_grads: callers must not reuse them
        fused = make_optimizer("adagrad", 0.1)
        theta = rng.normal(size=(10, 2))
        grads = rng.normal(size=(10, 2))
        kept = grads.copy()
        fused.step_sparse_fused("p", theta, np.arange(10), grads)
        assert not np.allclose(grads, kept)

    def test_base_class_delegates_to_step_sparse(self):
        class Recording(SGD):
            def __init__(self):
                super().__init__(0.1)
                self.calls = []

            def step_sparse(self, name, array, rows, row_grads):
                self.calls.append(name)
                super().step_sparse(name, array, rows, row_grads)

        # an optimizer that only implements step_sparse still works fused
        from repro.nn.optimizers import Optimizer

        opt = Recording()
        theta = np.ones((4, 2))
        Optimizer.step_sparse_fused(opt, "p", theta, np.array([1]), np.ones((1, 2)))
        assert opt.calls == ["p"]
