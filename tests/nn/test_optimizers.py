"""Unit tests for :mod:`repro.nn.optimizers`.

The key property: the sparse path must produce the same result as the
dense path restricted to the touched rows (lazy semantics), and Adam's
per-row bias correction must track per-row step counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, TrainingError
from repro.nn.optimizers import SGD, Adagrad, Adam, aggregate_rows, make_optimizer


class TestAggregateRows:
    def test_unique_rows_pass_through(self):
        rows, grads = aggregate_rows(np.array([2, 0]), np.array([[1.0], [2.0]]))
        assert rows.tolist() == [0, 2]
        assert grads.tolist() == [[2.0], [1.0]]

    def test_duplicates_summed(self):
        rows, grads = aggregate_rows(
            np.array([1, 1, 3]), np.array([[1.0, 2.0], [10.0, 20.0], [5.0, 5.0]])
        )
        assert rows.tolist() == [1, 3]
        assert grads.tolist() == [[11.0, 22.0], [5.0, 5.0]]

    def test_multiaxis_grads(self):
        rows, grads = aggregate_rows(np.array([0, 0]), np.ones((2, 3, 4)))
        assert grads.shape == (1, 3, 4)
        assert np.all(grads == 2.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(TrainingError):
            aggregate_rows(np.array([0]), np.ones((2, 3)))


class TestSGD:
    def test_dense_step(self):
        opt = SGD(learning_rate=0.5)
        theta = np.array([1.0, 2.0])
        opt.step_dense("p", theta, np.array([1.0, -2.0]))
        assert theta.tolist() == [0.5, 3.0]

    def test_sparse_step_touches_only_rows(self):
        opt = SGD(learning_rate=1.0)
        theta = np.zeros((4, 2))
        opt.step_sparse("p", theta, np.array([1, 3]), np.ones((2, 2)))
        assert np.all(theta[[0, 2]] == 0.0)
        assert np.all(theta[[1, 3]] == -1.0)

    def test_bad_lr_raises(self):
        with pytest.raises(ConfigError):
            SGD(learning_rate=0.0)


class TestAdagrad:
    def test_accumulates(self):
        opt = Adagrad(learning_rate=1.0)
        theta = np.array([0.0])
        opt.step_dense("p", theta, np.array([2.0]))
        first = theta.copy()
        opt.step_dense("p", theta, np.array([2.0]))
        # second step must be smaller in magnitude than the first
        assert abs(theta[0] - first[0]) < abs(first[0])

    def test_sparse_matches_dense_on_touched_rows(self):
        grads = np.array([[0.5, -1.0], [2.0, 0.1]])
        dense_theta = np.ones((5, 2))
        sparse_theta = np.ones((5, 2))
        dense_opt = Adagrad(learning_rate=0.1)
        sparse_opt = Adagrad(learning_rate=0.1)
        full_grad = np.zeros((5, 2))
        full_grad[[1, 3]] = grads
        dense_opt.step_dense("p", dense_theta, full_grad)
        sparse_opt.step_sparse("p", sparse_theta, np.array([1, 3]), grads)
        assert np.allclose(dense_theta[[1, 3]], sparse_theta[[1, 3]])
        # untouched rows identical to init
        assert np.all(sparse_theta[[0, 2, 4]] == 1.0)


class TestAdam:
    def test_first_dense_step_is_lr_sized(self):
        opt = Adam(learning_rate=0.1)
        theta = np.array([0.0])
        opt.step_dense("p", theta, np.array([3.0]))
        # bias-corrected first Adam step ~ lr * sign(grad)
        assert theta[0] == pytest.approx(-0.1, rel=1e-6)

    def test_sparse_first_step_matches_dense(self):
        grads = np.array([[1.0, -2.0]])
        a = np.zeros((3, 2))
        b = np.zeros((3, 2))
        Adam(learning_rate=0.01).step_dense("p", a, np.vstack([np.zeros((1, 2)), grads, np.zeros((1, 2))]))
        Adam(learning_rate=0.01).step_sparse("p", b, np.array([1]), grads)
        assert np.allclose(a[1], b[1], atol=1e-12)

    def test_lazy_rows_keep_own_step_counts(self):
        opt = Adam(learning_rate=0.1)
        theta = np.zeros((2, 1))
        # row 0 updated twice, row 1 once; if bias correction used a global
        # step, row 1's first update would be wrongly scaled.
        opt.step_sparse("p", theta, np.array([0]), np.array([[1.0]]))
        opt.step_sparse("p", theta, np.array([0, 1]), np.array([[1.0], [1.0]]))
        fresh = np.zeros((1, 1))
        Adam(learning_rate=0.1).step_sparse("q", fresh, np.array([0]), np.array([[1.0]]))
        assert theta[1, 0] == pytest.approx(fresh[0, 0])

    def test_converges_on_quadratic(self):
        opt = Adam(learning_rate=0.05)
        theta = np.array([5.0])
        for _ in range(800):
            opt.step_dense("p", theta, 2.0 * theta)
        assert abs(theta[0]) < 1e-2

    def test_bad_betas_raise(self):
        with pytest.raises(ConfigError):
            Adam(beta1=1.0)
        with pytest.raises(ConfigError):
            Adam(beta2=-0.1)

    def test_reset_clears_state(self):
        opt = Adam(learning_rate=0.1)
        theta = np.array([0.0])
        opt.step_dense("p", theta, np.array([1.0]))
        opt.reset()
        assert opt._state == {}


class TestFactory:
    @pytest.mark.parametrize("name,cls", [("sgd", SGD), ("adagrad", Adagrad), ("adam", Adam)])
    def test_make(self, name, cls):
        opt = make_optimizer(name, 0.01)
        assert isinstance(opt, cls)
        assert opt.learning_rate == 0.01

    def test_unknown_raises(self):
        with pytest.raises(ConfigError, match="unknown optimizer"):
            make_optimizer("rmsprop", 0.1)
