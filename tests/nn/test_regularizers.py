"""Unit tests for :mod:`repro.nn.regularizers` with finite-difference checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.autodiff import numeric_gradient
from repro.nn.regularizers import (
    DirichletSparsityRegularizer,
    L2Regularizer,
    N3Regularizer,
)


class TestL2:
    def test_value(self):
        reg = L2Regularizer(strength=0.5, scale=2.0)
        assert reg.value(np.array([1.0, 2.0])) == pytest.approx(0.25 * 5.0)

    def test_grad_matches_finite_differences(self):
        reg = L2Regularizer(strength=0.3, scale=4.0)
        theta = np.array([0.5, -1.5, 2.0])
        numeric = numeric_gradient(lambda t: reg.value(t), theta.copy())
        assert np.allclose(reg.grad(theta), numeric, atol=1e-7)

    def test_zero_strength_zero_grad(self):
        reg = L2Regularizer(strength=0.0)
        assert np.all(reg.grad(np.ones(3)) == 0.0)

    def test_negative_strength_raises(self):
        with pytest.raises(ConfigError):
            L2Regularizer(strength=-1.0)

    def test_bad_scale_raises(self):
        with pytest.raises(ConfigError):
            L2Regularizer(strength=1.0, scale=0.0)


class TestN3:
    def test_value_cubic(self):
        reg = N3Regularizer(strength=1.0)
        assert reg.value(np.array([-2.0])) == pytest.approx(8.0)

    def test_grad_matches_finite_differences(self):
        reg = N3Regularizer(strength=0.7, scale=3.0)
        theta = np.array([0.5, -1.5, 2.0])
        numeric = numeric_gradient(lambda t: reg.value(t), theta.copy())
        assert np.allclose(reg.grad(theta), numeric, atol=1e-6)


class TestDirichletSparsity:
    def test_sparser_omega_has_lower_loss_when_alpha_below_one(self):
        reg = DirichletSparsityRegularizer(alpha=1.0 / 16.0, strength=1.0)
        uniform = np.full(8, 0.25)
        sparse = np.array([0.9, 0.9, 0.05, 0.05, 0.05, 0.02, 0.02, 0.01])
        assert reg.value(sparse) < reg.value(uniform)

    def test_scale_invariance_of_value(self):
        # L depends on |ω|/||ω||_1 only, so rescaling ω leaves it unchanged.
        reg = DirichletSparsityRegularizer(alpha=0.1, strength=1.0, eps=0.0)
        omega = np.array([0.5, -1.0, 2.0])
        assert reg.value(omega) == pytest.approx(reg.value(10.0 * omega))

    def test_grad_matches_finite_differences(self):
        reg = DirichletSparsityRegularizer(alpha=1.0 / 16.0, strength=1e-2, eps=1e-12)
        omega = np.array([0.8, -0.5, 1.2, 0.3])
        numeric = numeric_gradient(lambda w: reg.value(w), omega.copy(), eps=1e-7)
        assert np.allclose(reg.grad(omega), numeric, rtol=1e-4)

    def test_grad_shape_preserved(self):
        reg = DirichletSparsityRegularizer()
        omega = np.ones((2, 2, 2))
        assert reg.grad(omega).shape == (2, 2, 2)

    def test_zero_entry_gets_finite_gradient(self):
        reg = DirichletSparsityRegularizer(eps=1e-8)
        grad = reg.grad(np.array([0.0, 1.0]))
        assert np.all(np.isfinite(grad))

    def test_bad_alpha_raises(self):
        with pytest.raises(ConfigError):
            DirichletSparsityRegularizer(alpha=0.0)

    def test_negative_strength_raises(self):
        with pytest.raises(ConfigError):
            DirichletSparsityRegularizer(strength=-0.1)

    def test_paper_hyperparameters_accepted(self):
        # §6.2: alpha tuned to 1/16, lambda_dir to 1e-2.
        reg = DirichletSparsityRegularizer(alpha=1.0 / 16.0, strength=1e-2)
        assert reg.alpha == pytest.approx(1.0 / 16.0)
        assert reg.strength == pytest.approx(1e-2)
