"""Integration tests: every model family through the full pipeline.

Each test trains briefly on the tiny dataset and checks that the filtered
MRR beats the random-ranking baseline by a wide margin — certifying that
scoring, gradients, sampling, optimisation, constraint projection and
evaluation compose correctly for that family.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ERMLP, RESCAL, TransE
from repro.core.models import (
    make_complex,
    make_cp,
    make_cph,
    make_distmult,
    make_learned_weight_model,
    make_quaternion,
)
from repro.eval.evaluator import LinkPredictionEvaluator
from repro.kg.augment import augment_with_inverses
from repro.training.trainer import Trainer, TrainingConfig


def _random_mrr(num_entities: int) -> float:
    """Expected MRR of uniform random ranking ~ H(n)/n."""
    return float(np.mean(1.0 / np.arange(1, num_entities + 1)))


CONFIG = TrainingConfig(epochs=200, batch_size=256, learning_rate=0.02, seed=0,
                        validate_every=1000, patience=1000)


def _train_and_mrr(model, dataset):
    Trainer(dataset, CONFIG).train(model)
    result = LinkPredictionEvaluator(dataset).evaluate(model, "test")
    return result.overall.mrr


class TestTrilinearFamily:
    @pytest.mark.parametrize("factory", [make_distmult, make_complex, make_cph,
                                         make_quaternion])
    def test_model_learns(self, factory, tiny_dataset):
        model = factory(
            tiny_dataset.num_entities, tiny_dataset.num_relations,
            total_dim=16, rng=np.random.default_rng(0),
        )
        mrr = _train_and_mrr(model, tiny_dataset)
        assert mrr > 5 * _random_mrr(tiny_dataset.num_entities)
        assert mrr > 0.35

    def test_cp_trains_but_generalizes_poorly(self, tiny_dataset):
        """CP must train (loss falls) yet stay far below CPh on test."""
        cp = make_cp(tiny_dataset.num_entities, tiny_dataset.num_relations,
                     total_dim=16, rng=np.random.default_rng(0))
        result = Trainer(tiny_dataset, CONFIG).train(cp)
        assert result.history.losses[-1] < result.history.losses[0]
        cp_mrr = LinkPredictionEvaluator(tiny_dataset).evaluate(cp, "test").overall.mrr

        cph = make_cph(tiny_dataset.num_entities, tiny_dataset.num_relations,
                       total_dim=16, rng=np.random.default_rng(0))
        cph_mrr = _train_and_mrr(cph, tiny_dataset)
        assert cph_mrr > 2 * cp_mrr

    def test_learned_weight_model_trains(self, tiny_dataset):
        model = make_learned_weight_model(
            tiny_dataset.num_entities, tiny_dataset.num_relations,
            total_dim=16, rng=np.random.default_rng(0), transform="softmax",
        )
        mrr = _train_and_mrr(model, tiny_dataset)
        assert mrr > 3 * _random_mrr(tiny_dataset.num_entities)


class TestBaselines:
    def test_transe_learns(self, tiny_dataset):
        model = TransE(tiny_dataset.num_entities, tiny_dataset.num_relations,
                       dim=16, rng=np.random.default_rng(0))
        mrr = _train_and_mrr(model, tiny_dataset)
        assert mrr > 3 * _random_mrr(tiny_dataset.num_entities)

    def test_rescal_learns(self, tiny_dataset):
        model = RESCAL(tiny_dataset.num_entities, tiny_dataset.num_relations,
                       dim=16, rng=np.random.default_rng(0))
        mrr = _train_and_mrr(model, tiny_dataset)
        assert mrr > 3 * _random_mrr(tiny_dataset.num_entities)

    def test_er_mlp_learns(self, tiny_dataset):
        model = ERMLP(tiny_dataset.num_entities, tiny_dataset.num_relations,
                      dim=8, rng=np.random.default_rng(0), hidden=16)
        config = TrainingConfig(epochs=60, batch_size=256, learning_rate=0.01,
                                seed=0, validate_every=1000, patience=1000)
        Trainer(tiny_dataset, config).train(model)
        result = LinkPredictionEvaluator(tiny_dataset, batch_size=64).evaluate(model, "test")
        # ER-MLP is a famously weak link predictor (the paper's §2.2.2
        # criticism); the bar here is only "clearly above random".
        assert result.overall.mrr > 1.5 * _random_mrr(tiny_dataset.num_entities)


class TestAugmentedCP:
    def test_literal_augmentation_rescues_cp(self, tiny_dataset):
        """The original Lacroix formulation: CP trained on the dataset with
        explicit inverse triples must far exceed plain CP."""
        plain_cp = make_cp(tiny_dataset.num_entities, tiny_dataset.num_relations,
                           total_dim=16, rng=np.random.default_rng(0))
        plain_mrr = _train_and_mrr(plain_cp, tiny_dataset)

        augmented = augment_with_inverses(tiny_dataset)
        aug_cp = make_cp(augmented.num_entities, augmented.num_relations,
                         total_dim=16, rng=np.random.default_rng(0))
        Trainer(augmented, CONFIG).train(aug_cp)
        aug_mrr = LinkPredictionEvaluator(augmented).evaluate(aug_cp, "test").overall.mrr
        assert aug_mrr > 2 * plain_mrr
