"""The paper's §5.1 claim: relative model performance is consistent
across datasets.

The paper picked WN18 "because the relative performance on all datasets
was quite consistent".  This test trains the Table 2 core models on the
FB15k-flavoured synthetic dataset (different structure: typed N-to-N
relations, many relations, weaker inverse leakage) and checks that the
ordering found on the WordNet-like dataset carries over.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import make_complex, make_cp, make_cph, make_distmult
from repro.eval.evaluator import LinkPredictionEvaluator
from repro.kg.synthetic_fb import SyntheticFBConfig, generate_synthetic_fb15k
from repro.training.trainer import Trainer, TrainingConfig


@pytest.fixture(scope="module")
def fb_metrics():
    dataset = generate_synthetic_fb15k(
        SyntheticFBConfig(num_entities=300, facts_per_relation=40, seed=5)
    )
    config = TrainingConfig(epochs=150, batch_size=512, learning_rate=0.02,
                            validate_every=50, patience=100, seed=0)
    evaluator = LinkPredictionEvaluator(dataset)
    metrics = {}
    factories = {
        "distmult": make_distmult,
        "complex": make_complex,
        "cp": make_cp,
        "cph": make_cph,
    }
    for offset, (name, factory) in enumerate(factories.items()):
        model = factory(dataset.num_entities, dataset.num_relations, 32,
                        np.random.default_rng(200 + offset), regularization=3e-3)
        Trainer(dataset, config).train(model)
        metrics[name] = evaluator.evaluate(model, "test").overall.mrr
    return metrics


class TestCrossDatasetConsistency:
    def test_complex_and_cph_lead(self, fb_metrics):
        assert fb_metrics["complex"] > fb_metrics["distmult"]
        assert fb_metrics["cph"] > fb_metrics["distmult"]

    def test_cp_still_last(self, fb_metrics):
        assert fb_metrics["cp"] < fb_metrics["distmult"]
        assert fb_metrics["cp"] < 0.6 * fb_metrics["complex"]

    def test_complex_cph_comparable(self, fb_metrics):
        assert abs(fb_metrics["complex"] - fb_metrics["cph"]) < 0.15
