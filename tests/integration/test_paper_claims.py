"""Qualitative reproduction of the paper's headline claims at test scale.

These are scaled-down versions of the benchmark assertions: they certify
on every test run (in ~30 s) that the *shape* of Tables 2-4 holds —
who wins, who loses, and why — so regressions in any substrate that
would silently change the science are caught immediately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import (
    make_complex,
    make_cp,
    make_cph,
    make_distmult,
    make_learned_weight_model,
    make_quaternion,
)
from repro.eval.evaluator import LinkPredictionEvaluator
from repro.kg.synthetic import SyntheticKGConfig, generate_synthetic_kg
from repro.training.trainer import Trainer, TrainingConfig

TOTAL_DIM = 32


@pytest.fixture(scope="module")
def dataset():
    return generate_synthetic_kg(
        SyntheticKGConfig(num_entities=200, num_clusters=12, num_domains=4, seed=11)
    )


@pytest.fixture(scope="module")
def metrics(dataset):
    """Train the Table 2 model family once; share metrics across tests."""
    config = TrainingConfig(epochs=250, batch_size=512, learning_rate=0.02,
                            validate_every=50, patience=100, seed=0)
    evaluator = LinkPredictionEvaluator(dataset)
    out = {}
    factories = {
        "distmult": make_distmult,
        "complex": make_complex,
        "cp": make_cp,
        "cph": make_cph,
        "quaternion": make_quaternion,
    }
    for offset, (name, factory) in enumerate(factories.items()):
        model = factory(dataset.num_entities, dataset.num_relations, TOTAL_DIM,
                        np.random.default_rng(100 + offset), regularization=3e-3)
        Trainer(dataset, config).train(model)
        out[name] = {
            "test": evaluator.evaluate(model, "test").overall,
            "train": evaluator.evaluate_triples(
                model, dataset.train, max_triples=400
            ).overall,
        }
    return out


class TestTable2Shape:
    def test_complex_and_cph_beat_distmult(self, metrics):
        assert metrics["complex"]["test"].mrr > metrics["distmult"]["test"].mrr
        assert metrics["cph"]["test"].mrr > metrics["distmult"]["test"].mrr

    def test_cp_is_the_clear_loser(self, metrics):
        assert metrics["cp"]["test"].mrr < 0.5 * metrics["distmult"]["test"].mrr
        assert metrics["cp"]["test"].mrr < 0.3 * metrics["complex"]["test"].mrr

    def test_complex_and_cph_comparable(self, metrics):
        assert abs(metrics["complex"]["test"].mrr - metrics["cph"]["test"].mrr) < 0.1

    def test_cp_overfits_not_underfits(self, metrics):
        """The paper's most surprising Table 2 finding: CP's train metrics
        are fine, so its failure is generalisation, not capacity."""
        assert metrics["cp"]["train"].mrr > 3.0 * metrics["cp"]["test"].mrr

    def test_all_models_fit_training_data(self, metrics):
        for name in ("distmult", "complex", "cp", "cph"):
            assert metrics[name]["train"].mrr > 0.45, name

    def test_distmult_signature_high_hits10_low_hits1(self, metrics):
        """DistMult's symmetric score: it finds the right neighbourhood
        (high Hits@10) but cannot order directions (low Hits@1)."""
        distmult = metrics["distmult"]["test"]
        cplx = metrics["complex"]["test"]
        assert distmult.hits[10] > 0.75 * cplx.hits[10]
        assert distmult.hits[1] < cplx.hits[1]


class TestTable4Shape:
    def test_quaternion_competitive_with_complex(self, metrics):
        assert metrics["quaternion"]["test"].mrr > 0.8 * metrics["complex"]["test"].mrr

    def test_quaternion_fits_train(self, metrics):
        assert metrics["quaternion"]["train"].mrr > 0.5


class TestTable3Shape:
    @pytest.mark.parametrize("transform", ["identity", "sigmoid", "softmax"])
    def test_learned_weights_cannot_break_symmetry(self, dataset, metrics, transform):
        """§6.2: gradient dynamics leave the learned ω (near-)symmetric
        under head/tail exchange, so the model performs at DistMult
        level, well below ComplEx — for every range restriction."""
        config = TrainingConfig(epochs=150, batch_size=512, learning_rate=0.02,
                                validate_every=50, patience=100, seed=0)
        model = make_learned_weight_model(
            dataset.num_entities, dataset.num_relations, TOTAL_DIM,
            np.random.default_rng(7), transform=transform,
        )
        Trainer(dataset, config).train(model)
        omega = model.omega
        symmetry_distance = np.linalg.norm(
            omega - np.swapaxes(omega, 0, 1)
        ) / np.linalg.norm(omega)
        assert symmetry_distance < 0.25
        mrr = LinkPredictionEvaluator(dataset).evaluate(model, "test").overall.mrr
        assert mrr < 0.85 * metrics["complex"]["test"].mrr
