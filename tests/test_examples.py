"""Integrity checks for the runnable examples.

Full example runs take minutes, so the test-suite verifies the cheap
invariants: every example compiles, imports only the public API, and has
a ``main()`` guarded by ``__main__``.  (The examples themselves are
exercised end-to-end by humans / CI smoke jobs.)
"""

from __future__ import annotations

import ast
import py_compile
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_expected_examples_present():
    names = {path.name for path in EXAMPLE_FILES}
    assert {
        "quickstart.py",
        "serving_quickstart.py",
        "recommender_system.py",
        "embedding_analysis.py",
        "weight_vector_exploration.py",
    } <= names
    assert len(names) >= 5


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
class TestEachExample:
    def test_compiles(self, path, tmp_path):
        py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)

    def test_has_docstring_and_main_guard(self, path):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        assert ast.get_docstring(tree), f"{path.name} missing module docstring"
        source = path.read_text(encoding="utf-8")
        assert 'if __name__ == "__main__":' in source
        assert "def main(" in source

    def test_imports_resolve(self, path):
        """Every repro.* import in the example must exist in the library."""
        import importlib

        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and (
                node.module == "repro" or node.module.startswith("repro.")
            ):
                module = importlib.import_module(node.module)
                for alias in node.names:
                    assert hasattr(module, alias.name), (
                        f"{path.name}: {node.module}.{alias.name} does not exist"
                    )
