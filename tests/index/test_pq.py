"""Product quantization: codebook determinism, ADC identity, IVF escapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import (
    make_complex,
    make_cp,
    make_cph,
    make_distmult,
    make_quaternion,
)
from repro.errors import ServingError
from repro.index.base import load_index
from repro.index.ivf import IVFIndex
from repro.index.pq import MAX_CODEBOOK, PQConfig, ProductQuantizer
from repro.serving import LinkPredictor

pytestmark = pytest.mark.index

MAKERS = {
    "distmult": make_distmult,
    "complex": make_complex,
    "cp": make_cp,
    "cph": make_cph,
    "quaternion": make_quaternion,
}


@pytest.fixture
def model():
    return make_complex(150, 4, 16, np.random.default_rng(5))


@pytest.fixture
def points(rng):
    return rng.normal(size=(300, 16))


class TestConfig:
    def test_round_trips_through_dict(self):
        config = PQConfig(m=4, refine=32, train_sample=1000, iters=5, seed=9)
        assert PQConfig.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"m": 0},
            {"refine": 0},
            {"train_sample": 0},
            {"iters": 0},
            {"seed": -1},
        ],
    )
    def test_rejects_non_positive_fields(self, kwargs):
        with pytest.raises(ServingError):
            PQConfig(**kwargs)


class TestFit:
    def test_deterministic_across_fits(self, points):
        config = PQConfig(m=4, train_sample=200, iters=4, seed=3)
        a = ProductQuantizer.fit(points, config)
        b = ProductQuantizer.fit(points, config)
        np.testing.assert_array_equal(a.codebooks, b.codebooks)
        np.testing.assert_array_equal(a.encode(points), b.encode(points))

    def test_seed_changes_codebooks(self, points):
        a = ProductQuantizer.fit(points, PQConfig(m=4, iters=4, seed=3))
        b = ProductQuantizer.fit(points, PQConfig(m=4, iters=4, seed=4))
        assert not np.array_equal(a.codebooks, b.codebooks)

    def test_rejects_indivisible_subspaces(self, points):
        with pytest.raises(ServingError, match="divide"):
            ProductQuantizer.fit(points, PQConfig(m=5))

    def test_rejects_empty_matrix(self):
        with pytest.raises(ServingError):
            ProductQuantizer.fit(np.zeros((0, 16)), PQConfig(m=4))

    def test_codebook_never_exceeds_byte_range(self, rng):
        tiny = rng.normal(size=(10, 8))
        quantizer = ProductQuantizer.fit(tiny, PQConfig(m=2, iters=3))
        assert quantizer.ks <= min(MAX_CODEBOOK, 10)
        assert quantizer.m == 2 and quantizer.sub_dim == 4

    def test_train_sample_subsets_deterministically(self, points):
        config = PQConfig(m=4, train_sample=64, iters=4, seed=1)
        a = ProductQuantizer.fit(points, config)
        b = ProductQuantizer.fit(points, config)
        np.testing.assert_array_equal(a.codebooks, b.codebooks)


class TestADC:
    def test_codes_are_bytes(self, points):
        quantizer = ProductQuantizer.fit(points, PQConfig(m=4, iters=4))
        codes = quantizer.encode(points)
        assert codes.dtype == np.uint8 and codes.shape == (len(points), 4)

    def test_adc_equals_inner_product_with_decoded_vectors(self, points, rng):
        """ADC table lookups must reproduce ⟨query, decode(code)⟩."""
        quantizer = ProductQuantizer.fit(points, PQConfig(m=4, iters=6))
        codes = quantizer.encode(points)
        queries = rng.normal(size=(7, 16))
        got = quantizer.scores(queries, codes)
        expected = queries @ quantizer.decode(codes).T
        np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_lookup_tables_shape(self, points, rng):
        quantizer = ProductQuantizer.fit(points, PQConfig(m=8, iters=3))
        lut = quantizer.lookup_tables(rng.normal(size=(5, 16)))
        assert lut.shape == (5, 8, quantizer.ks)

    def test_quantization_preserves_neighborhoods(self, rng):
        """Clustered data: ADC top-k must mostly agree with exact top-k."""
        centers = rng.normal(size=(10, 16)) * 4
        data = np.repeat(centers, 50, axis=0) + rng.normal(size=(500, 16)) * 0.05
        quantizer = ProductQuantizer.fit(data, PQConfig(m=4, iters=8))
        codes = quantizer.encode(data)
        query = data[:3]
        exact = np.argsort(-(query @ data.T), axis=1)[:, :10]
        approx = np.argsort(-quantizer.scores(query, codes), axis=1)[:, :20]
        for exact_row, approx_row in zip(exact, approx):
            overlap = len(set(exact_row) & set(approx_row))
            assert overlap >= 8


class TestIVFEscapeHatches:
    """pq=None, refine >= union and probe-all must not change results."""

    def _batch(self, index, model):
        anchors = np.arange(0, 40, 3)
        relations = np.arange(len(anchors)) % model.num_relations
        return index.candidate_lists(anchors, relations, "tail")

    def test_pq_none_is_bit_identical_and_never_scans(self, model):
        plain = IVFIndex(model, nlist=10, nprobe=3, seed=2)
        explicit = IVFIndex(model, nlist=10, nprobe=3, seed=2, pq=None)
        a = self._batch(plain, model)
        b = self._batch(explicit, model)
        for row_a, row_b in zip(a.rows, b.rows):
            np.testing.assert_array_equal(row_a, row_b)
        assert b.num_scanned == 0

    def test_large_refine_disables_pruning(self, model):
        plain = IVFIndex(model, nlist=10, nprobe=3, seed=2)
        pq = PQConfig(m=4, refine=model.num_entities, iters=4)
        coded = IVFIndex(model, nlist=10, nprobe=3, seed=2, pq=pq)
        a = self._batch(plain, model)
        b = self._batch(coded, model)
        for row_a, row_b in zip(a.rows, b.rows):
            np.testing.assert_array_equal(row_a, row_b)

    def test_probe_all_covers_everything(self, model):
        pq = PQConfig(m=4, refine=8, iters=4)
        index = IVFIndex(model, nlist=10, nprobe=10, seed=2, pq=pq)
        batch = self._batch(index, model)
        assert batch.covers_all
        assert batch.num_scanned == 0

    def test_pruning_shrinks_rows_to_refine(self, model):
        plain = IVFIndex(model, nlist=10, nprobe=4, seed=2)
        pq = PQConfig(m=4, refine=12, iters=4)
        coded = IVFIndex(model, nlist=10, nprobe=4, seed=2, pq=pq)
        a = self._batch(plain, model)
        b = self._batch(coded, model)
        assert b.num_scanned > 0
        for row_a, row_b in zip(a.rows, b.rows):
            assert len(row_b) <= 12
            assert set(row_b) <= set(row_a)
            assert np.all(np.diff(row_b) > 0)  # ascending, unique


class TestPredictorBitIdentityPins:
    """Escape hatches pinned across every paper model family."""

    @pytest.mark.parametrize("name", sorted(MAKERS))
    def test_full_probe_with_pq_matches_plain_serving(self, name):
        model = MAKERS[name](60, 5, 16, np.random.default_rng(9))
        plain = LinkPredictor(model)
        pq = PQConfig(m=4, refine=8, iters=3)
        indexed = LinkPredictor(
            model, index=IVFIndex(model, nlist=6, nprobe=6, seed=1, pq=pq)
        )
        anchors = np.arange(12)
        relations = np.arange(12) % model.num_relations
        expected = plain.top_k_tails(anchors, relations, k=5)
        got = indexed.top_k_tails(anchors, relations, k=5)
        np.testing.assert_array_equal(got.ids, expected.ids)
        np.testing.assert_array_equal(got.scores, expected.scores)

    @pytest.mark.parametrize("name", sorted(MAKERS))
    def test_pq_none_matches_pre_pq_index_serving(self, name):
        model = MAKERS[name](60, 5, 16, np.random.default_rng(9))
        before = LinkPredictor(model, index=IVFIndex(model, nlist=6, nprobe=2, seed=1))
        after = LinkPredictor(
            model, index=IVFIndex(model, nlist=6, nprobe=2, seed=1, pq=None)
        )
        anchors = np.arange(12)
        relations = np.arange(12) % model.num_relations
        a = before.top_k_tails(anchors, relations, k=5)
        b = after.top_k_tails(anchors, relations, k=5)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_array_equal(a.scores, b.scores)


class TestPersistence:
    @pytest.mark.parametrize("memmap", [False, True], ids=["npz", "memmap"])
    def test_round_trip_preserves_codes_and_results(self, model, tmp_path, memmap):
        pq = PQConfig(m=4, refine=12, iters=4, seed=3)
        index = IVFIndex(model, nlist=10, nprobe=4, seed=2, pq=pq)
        anchors = np.arange(20)
        relations = np.arange(20) % model.num_relations
        before = index.candidate_lists(anchors, relations, "tail")
        index.save(tmp_path / "ix", memmap=memmap)
        loaded = load_index(tmp_path / "ix", model)
        assert loaded.pq == pq
        after = loaded.candidate_lists(anchors, relations, "tail")
        for row_a, row_b in zip(before.rows, after.rows):
            np.testing.assert_array_equal(row_a, row_b)

    def test_validation_rejects_indivisible_pq(self, model):
        with pytest.raises(ServingError):
            IVFIndex(model, nlist=10, nprobe=4, pq=PQConfig(m=5))


class TestServingStats:
    def test_predictor_reports_scanned_and_fold_cache(self, model):
        pq = PQConfig(m=4, refine=12, iters=4)
        predictor = LinkPredictor(
            model, index=IVFIndex(model, nlist=10, nprobe=4, seed=2, pq=pq)
        )
        anchors = np.arange(16)
        relations = np.arange(16) % model.num_relations
        predictor.top_k_tails(anchors, relations, k=5)
        stats = predictor.index_stats_dict()
        assert stats is not None
        assert stats["entities_scanned"] > 0
        assert stats["fold_cache"]["misses"] > 0
