"""Folded candidate matrices: the inner-product scoring identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import (
    make_complex,
    make_cp,
    make_cph,
    make_distmult,
    make_quaternion,
)
from repro.errors import ServingError
from repro.index.folded_vectors import FoldedCandidateSource, fold_candidate_matrix

pytestmark = pytest.mark.index

MAKERS = {
    "distmult": make_distmult,
    "complex": make_complex,
    "cp": make_cp,
    "cph": make_cph,
    "quaternion": make_quaternion,
}


@pytest.fixture(params=sorted(MAKERS))
def model(request):
    return MAKERS[request.param](60, 5, 16, np.random.default_rng(9))


class TestScoringIdentity:
    """⟨anchor_flat, folded_row⟩ must equal the model's Eq. 8 score."""

    def test_tail_side(self, model):
        queries = model.entity_embeddings.reshape(model.num_entities, -1)
        for relation in range(model.num_relations):
            matrix = fold_candidate_matrix(model, relation, "tail")
            heads = np.arange(10)
            tails = np.arange(10, 20)
            expected = model.score_triples(
                heads, tails, np.full(10, relation, dtype=np.int64)
            )
            got = np.einsum("bf,bf->b", queries[heads], matrix[tails])
            np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_head_side(self, model):
        queries = model.entity_embeddings.reshape(model.num_entities, -1)
        matrix = fold_candidate_matrix(model, 1, "head")
        heads = np.arange(8)
        tails = np.arange(20, 28)
        expected = model.score_triples(heads, tails, np.full(8, 1, dtype=np.int64))
        got = np.einsum("bf,bf->b", queries[tails], matrix[heads])
        np.testing.assert_allclose(got, expected, atol=1e-10)


class TestValidation:
    def test_rejects_bad_relation(self, model):
        with pytest.raises(ServingError):
            fold_candidate_matrix(model, model.num_relations, "tail")

    def test_rejects_bad_side(self, model):
        with pytest.raises(ServingError):
            fold_candidate_matrix(model, 0, "sideways")

    def test_rejects_non_multi_embedding(self):
        with pytest.raises(ServingError):
            FoldedCandidateSource(object())


class TestSourceCache:
    def test_caches_within_version(self, model):
        source = FoldedCandidateSource(model)
        first = source.candidate_matrix(0, "tail")
        assert source.candidate_matrix(0, "tail") is first

    def test_invalidates_on_version_bump(self, model):
        source = FoldedCandidateSource(model)
        first = source.candidate_matrix(0, "tail")
        model.entity_embeddings[0] += 0.5
        model._bump_scoring_version()
        second = source.candidate_matrix(0, "tail")
        assert second is not first
        assert not np.allclose(first[0], second[0])

    def test_lru_evicts_beyond_capacity(self, model):
        source = FoldedCandidateSource(model, max_cached=1)
        first = source.candidate_matrix(0, "tail")
        source.candidate_matrix(1, "tail")
        assert source.candidate_matrix(0, "tail") is not first  # rebuilt

    def test_feature_dim_matches_entity_matrix(self, model):
        source = FoldedCandidateSource(model)
        assert source.entity_matrix().shape == (
            model.num_entities,
            source.feature_dim,
        )
