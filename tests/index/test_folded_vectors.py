"""Folded candidate matrices: the inner-product scoring identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import (
    make_complex,
    make_cp,
    make_cph,
    make_distmult,
    make_quaternion,
)
from repro.errors import ServingError
from repro.index.folded_vectors import FoldedCandidateSource, fold_candidate_matrix

pytestmark = pytest.mark.index

MAKERS = {
    "distmult": make_distmult,
    "complex": make_complex,
    "cp": make_cp,
    "cph": make_cph,
    "quaternion": make_quaternion,
}


@pytest.fixture(params=sorted(MAKERS))
def model(request):
    return MAKERS[request.param](60, 5, 16, np.random.default_rng(9))


class TestScoringIdentity:
    """⟨anchor_flat, folded_row⟩ must equal the model's Eq. 8 score."""

    def test_tail_side(self, model):
        queries = model.entity_embeddings.reshape(model.num_entities, -1)
        for relation in range(model.num_relations):
            matrix = fold_candidate_matrix(model, relation, "tail")
            heads = np.arange(10)
            tails = np.arange(10, 20)
            expected = model.score_triples(
                heads, tails, np.full(10, relation, dtype=np.int64)
            )
            got = np.einsum("bf,bf->b", queries[heads], matrix[tails])
            np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_head_side(self, model):
        queries = model.entity_embeddings.reshape(model.num_entities, -1)
        matrix = fold_candidate_matrix(model, 1, "head")
        heads = np.arange(8)
        tails = np.arange(20, 28)
        expected = model.score_triples(heads, tails, np.full(8, 1, dtype=np.int64))
        got = np.einsum("bf,bf->b", queries[tails], matrix[heads])
        np.testing.assert_allclose(got, expected, atol=1e-10)


class TestValidation:
    def test_rejects_bad_relation(self, model):
        with pytest.raises(ServingError):
            fold_candidate_matrix(model, model.num_relations, "tail")

    def test_rejects_bad_side(self, model):
        with pytest.raises(ServingError):
            fold_candidate_matrix(model, 0, "sideways")

    def test_rejects_non_multi_embedding(self):
        with pytest.raises(ServingError):
            FoldedCandidateSource(object())


class TestSourceCache:
    def test_caches_within_version(self, model):
        source = FoldedCandidateSource(model)
        first = source.candidate_matrix(0, "tail")
        assert source.candidate_matrix(0, "tail") is first

    def test_invalidates_on_version_bump(self, model):
        source = FoldedCandidateSource(model)
        first = source.candidate_matrix(0, "tail")
        model.entity_embeddings[0] += 0.5
        model._bump_scoring_version()
        second = source.candidate_matrix(0, "tail")
        assert second is not first
        assert not np.allclose(first[0], second[0])

    def test_lru_evicts_beyond_capacity(self, model):
        source = FoldedCandidateSource(model, max_cached=1)
        first = source.candidate_matrix(0, "tail")
        source.candidate_matrix(1, "tail")
        assert source.candidate_matrix(0, "tail") is not first  # rebuilt

    def test_feature_dim_matches_entity_matrix(self, model):
        source = FoldedCandidateSource(model)
        assert source.entity_matrix().shape == (
            model.num_entities,
            source.feature_dim,
        )


class TestCacheStats:
    def test_counts_hits_misses_and_evictions(self, model):
        source = FoldedCandidateSource(model, max_cached=1)
        source.candidate_matrix(0, "tail")  # miss
        source.candidate_matrix(0, "tail")  # hit
        source.candidate_matrix(1, "tail")  # miss, evicts relation 0
        source.candidate_matrix(0, "tail")  # miss again: the thrash signal
        stats = source.stats
        assert (stats.hits, stats.misses) == (1, 3)
        assert stats.evictions == 2
        assert stats.store_hits == 0

    def test_larger_cache_stops_the_thrash(self, model):
        source = FoldedCandidateSource(model, max_cached=4)
        for _ in range(3):
            for relation in range(3):
                source.candidate_matrix(relation, "tail")
        assert source.stats.misses == 3
        assert source.stats.hits == 6
        assert source.stats.evictions == 0

    def test_to_dict_has_all_counters(self, model):
        source = FoldedCandidateSource(model)
        source.candidate_matrix(0, "tail")
        assert source.stats.to_dict() == {
            "hits": 0,
            "misses": 1,
            "evictions": 0,
            "store_hits": 0,
        }

    def test_rejects_non_positive_capacity(self, model):
        with pytest.raises(ServingError):
            FoldedCandidateSource(model, max_cached=0)


class TestMaterializedStore:
    def test_materialize_then_remap_instead_of_refolding(self, model, tmp_path):
        from repro.core.memstore import MemStore, is_mapped

        store = MemStore.create(tmp_path / "folds")
        writer = FoldedCandidateSource(model, store=store)
        written = writer.materialize(relations=[0, 1], sides=("tail",))
        assert written == 2

        reader = FoldedCandidateSource(model, store=MemStore.open(tmp_path / "folds"))
        mapped = reader.candidate_matrix(0, "tail")
        assert is_mapped(mapped)
        assert reader.stats.store_hits == 1
        np.testing.assert_array_equal(
            np.asarray(mapped), fold_candidate_matrix(model, 0, "tail")
        )

    def test_downcast_folds_keep_shape(self, model, tmp_path):
        from repro.core.memstore import MemStore

        store = MemStore.create(tmp_path / "folds")
        writer = FoldedCandidateSource(model, store=store)
        writer.materialize(relations=[2], sides=("tail",), dtype="float32")
        matrix = FoldedCandidateSource(model, store=store).candidate_matrix(2, "tail")
        assert matrix.dtype == np.float32
        assert matrix.shape == (model.num_entities, writer.feature_dim)

    def test_stale_fingerprint_disables_store(self, model, tmp_path):
        from repro.core.memstore import MemStore

        store = MemStore.create(tmp_path / "folds")
        FoldedCandidateSource(model, store=store).materialize(
            relations=[0], sides=("tail",)
        )
        model.entity_embeddings[0] += 0.25
        model._bump_scoring_version()
        reader = FoldedCandidateSource(model, store=store)
        fresh = reader.candidate_matrix(0, "tail")
        assert reader.stats.store_hits == 0  # refolded, stale store ignored
        np.testing.assert_allclose(
            np.asarray(fresh), fold_candidate_matrix(model, 0, "tail")
        )

    def test_training_mid_session_stops_store_reads(self, model, tmp_path):
        from repro.core.memstore import MemStore

        store = MemStore.create(tmp_path / "folds")
        source = FoldedCandidateSource(model, store=store)
        source.materialize(relations=[0], sides=("tail",))
        source.candidate_matrix(0, "tail")
        assert source.stats.store_hits == 1
        model.entity_embeddings[0] += 0.25
        model._bump_scoring_version()
        source.candidate_matrix(0, "tail")
        assert source.stats.store_hits == 1  # unchanged: store now distrusted

    def test_materialize_without_store_raises(self, model):
        with pytest.raises(ServingError, match="store"):
            FoldedCandidateSource(model).materialize()
