"""Index integration with the run pipeline, registries and CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.pipeline.components import INDEXES, build_index
from repro.pipeline.config import (
    DatasetSection,
    IndexSection,
    ModelSection,
    RunConfig,
    TrainingSection,
)
from repro.pipeline.runner import (
    build_run_index,
    load_run,
    load_run_index,
    run_pipeline,
    serve_run,
)

pytestmark = [pytest.mark.index, pytest.mark.pipeline]


def _config(index: IndexSection | None = None) -> RunConfig:
    return RunConfig(
        dataset=DatasetSection(
            generator="synthetic_wn18",
            params={
                "num_entities": 150,
                "num_clusters": 10,
                "num_domains": 3,
                "seed": 5,
            },
        ),
        model=ModelSection(name="complex", total_dim=16),
        training=TrainingSection(
            epochs=2, batch_size=256, validate_every=50, patience=50
        ),
        index=index or IndexSection(),
        seed=1,
    )


class TestIndexSection:
    def test_defaults_to_disabled(self):
        section = IndexSection()
        assert not section.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "faiss"},
            {"nlist": 0},
            {"nprobe": 0},
            {"nlist": 32, "nprobe": 64},
            {"seed": -1},
            {"iters": 0},
            {"spill": 0},
            {"on_stale": "ignore"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            IndexSection(**kwargs)

    def test_json_round_trip(self):
        config = _config(IndexSection(kind="ivf", nlist=9, nprobe=3, spill=1))
        restored = RunConfig.from_json(config.to_json())
        assert restored.index == config.index

    def test_old_configs_without_index_still_load(self):
        data = _config().to_dict()
        del data["index"]
        assert RunConfig.from_dict(data).index == IndexSection()

    def test_unknown_index_field_rejected(self):
        data = _config().to_dict()
        data["index"]["cells"] = 4
        with pytest.raises(ConfigError):
            RunConfig.from_dict(data)


class TestRegistry:
    def test_kinds_registered(self):
        assert "ivf" in INDEXES
        assert "exact" in INDEXES

    def test_build_index_none(self):
        assert build_index(object(), IndexSection()) is None

    def test_build_index_ivf_respects_section(self):
        from repro.core.models import make_complex
        from repro.index.ivf import IVFIndex

        model = make_complex(80, 3, 8, np.random.default_rng(1))
        index = build_index(model, IndexSection(kind="ivf", nlist=7, nprobe=2, spill=1))
        assert isinstance(index, IVFIndex)
        assert (index.nlist, index.nprobe, index.spill) == (7, 2, 1)


class TestRunnerIntegration:
    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("ixrun") / "run"
        run_pipeline(
            _config(IndexSection(kind="ivf", nlist=8, nprobe=2)), run_dir=path
        )
        return path

    def test_index_persisted_next_to_checkpoint(self, run_dir):
        assert (run_dir / "index" / "meta.json").exists()
        assert (run_dir / "checkpoint").exists()

    def test_serve_run_auto_attaches_index(self, run_dir):
        predictor = serve_run(run_dir, index="auto")
        assert predictor.index is not None
        result = predictor.top_k_tails([0, 1], [0, 0], k=5)
        assert result.ids.shape == (2, 5)
        assert predictor.index_stats.queries == 2

    def test_serve_run_default_is_exact(self, run_dir):
        assert serve_run(run_dir).index is None

    def test_serve_run_rejects_bad_index_arg(self, run_dir):
        with pytest.raises(ConfigError):
            serve_run(run_dir, index="yes please")

    def test_loaded_index_matches_checkpoint_fingerprint(self, run_dir):
        loaded = load_run(run_dir)
        index = load_run_index(run_dir, loaded.model)
        assert index is not None
        assert index.built_partitions  # persisted partitions usable as-is

    def test_exact_kind_persists_end_to_end(self, tmp_path):
        """kind="exact" must flow through build-and-save like IVF does."""
        path = tmp_path / "run"
        run_pipeline(_config(IndexSection(kind="exact")), run_dir=path)
        assert (path / "index" / "meta.json").exists()
        predictor = serve_run(path, index="auto")
        from repro.index.exact import ExactIndex

        assert isinstance(predictor.index, ExactIndex)
        plain = serve_run(path)
        a = predictor.top_k_tails([0, 1], [0, 0], k=5)
        b = plain.top_k_tails([0, 1], [0, 0], k=5)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_build_run_index_defaults_to_ivf(self, tmp_path):
        path = tmp_path / "run"
        run_pipeline(_config(), run_dir=path)  # index disabled in config
        assert load_run_index(path, load_run(path).model) is None
        index = build_run_index(path)
        assert index.kind == "ivf"
        assert (path / "index" / "meta.json").exists()


class TestCLI:
    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "run"
        run_pipeline(_config(), run_dir=path)
        return path

    def test_build_index_command(self, run_dir, capsys):
        assert main([
            "build-index", str(run_dir), "--nlist", "8", "--nprobe", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "IVFIndex" in out
        assert (run_dir / "index" / "meta.json").exists()

    def test_predict_with_index_and_stats(self, run_dir, capsys):
        loaded = load_run(run_dir)
        dataset = loaded.build_dataset()
        entity = dataset.entities.name(0)
        relation = dataset.relations.name(0)
        assert main([
            "predict", "--run-dir", str(run_dir), "--head", entity,
            "--relation", relation, "--index", "--stats", "-k", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "probed" in out
        assert "recall" in out

    def test_predict_index_requires_run_dir(self, run_dir, capsys):
        assert main([
            "predict", str(run_dir / "checkpoint"),
            "--dataset", "nowhere", "--index", "--head", "x", "--relation", "y",
        ]) == 2
        assert "run-dir" in capsys.readouterr().err

    def test_predict_stats_without_index(self, run_dir, capsys):
        loaded = load_run(run_dir)
        dataset = loaded.build_dataset()
        assert main([
            "predict", "--run-dir", str(run_dir),
            "--head", dataset.entities.name(1),
            "--relation", dataset.relations.name(0), "--stats",
        ]) == 0
        assert "cache" in capsys.readouterr().out
