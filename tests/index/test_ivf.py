"""IVF index mechanics: determinism, probing, staleness, persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import make_complex
from repro.errors import ServingError, StaleIndexError
from repro.index.base import load_index, model_fingerprint
from repro.index.exact import ExactIndex
from repro.index.ivf import IVFIndex, deterministic_kmeans

pytestmark = pytest.mark.index


@pytest.fixture
def model():
    return make_complex(150, 4, 16, np.random.default_rng(5))


class TestKMeans:
    def test_deterministic(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(200, 8))
        a = deterministic_kmeans(points, 12, seed=3, iters=7)
        b = deterministic_kmeans(points, 12, seed=3, iters=7)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_result(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(200, 8))
        a = deterministic_kmeans(points, 12, seed=3)
        b = deterministic_kmeans(points, 12, seed=4)
        assert not np.array_equal(a, b)

    def test_rejects_bad_nlist(self):
        points = np.zeros((5, 2))
        with pytest.raises(ServingError):
            deterministic_kmeans(points, 6)
        with pytest.raises(ServingError):
            deterministic_kmeans(points, 0)

    def test_duplicate_points_keep_cells_stable(self):
        # All-identical points: every assignment collapses into cell 0's
        # centroid position; empty cells keep their initial centroid.
        points = np.ones((30, 4))
        centroids = deterministic_kmeans(points, 3, seed=1, iters=5)
        assert centroids.shape == (3, 4)
        assert np.isfinite(centroids).all()


class TestCandidateLists:
    def test_rows_ascend_and_are_deterministic(self, model):
        index = IVFIndex(model, nlist=12, nprobe=3, spill=2, seed=1)
        anchors = np.array([3, 7, 7, 11])
        relations = np.array([0, 1, 1, 2])
        batch = index.candidate_lists(anchors, relations, "tail")
        assert not batch.covers_all
        assert batch.num_scored == sum(len(row) for row in batch.rows)
        for row in batch.rows:
            assert (np.diff(row) > 0).all()
        again = IVFIndex(model, nlist=12, nprobe=3, spill=2, seed=1)
        batch2 = again.candidate_lists(anchors, relations, "tail")
        for left, right in zip(batch.rows, batch2.rows):
            np.testing.assert_array_equal(left, right)

    def test_identical_queries_get_identical_rows(self, model):
        index = IVFIndex(model, nlist=12, nprobe=3)
        batch = index.candidate_lists([7, 7], [1, 1], "tail")
        np.testing.assert_array_equal(batch.rows[0], batch.rows[1])

    def test_full_probe_covers_all(self, model):
        index = IVFIndex(model, nlist=12, nprobe=12)
        batch = index.candidate_lists([0], [0], "tail")
        assert batch.covers_all
        assert batch.rows is None
        assert batch.num_scored == model.num_entities

    def test_nprobe_override_and_bounds(self, model):
        index = IVFIndex(model, nlist=12, nprobe=3)
        small = index.candidate_lists([0], [0], "tail", nprobe=1)
        large = index.candidate_lists([0], [0], "tail", nprobe=6)
        assert len(small.rows[0]) <= len(large.rows[0])
        with pytest.raises(ServingError):
            index.candidate_lists([0], [0], "tail", nprobe=0)
        with pytest.raises(ServingError):
            index.nprobe = 13

    def test_spill_grows_cells(self, model):
        lean = IVFIndex(model, nlist=12, nprobe=2, spill=1)
        wide = IVFIndex(model, nlist=12, nprobe=2, spill=3)
        lean_rows = lean.candidate_lists([5], [0], "tail").rows[0]
        wide_rows = wide.candidate_lists([5], [0], "tail").rows[0]
        assert len(wide_rows) >= len(lean_rows)

    def test_rejects_unknown_relation(self, model):
        index = IVFIndex(model, nlist=12)
        with pytest.raises(ServingError):
            index.candidate_lists([0], [model.num_relations], "tail")


class TestStaleness:
    def test_rebuild_policy_drops_partitions(self, model):
        index = IVFIndex(model, nlist=12, nprobe=3)
        index.candidate_lists([0], [0], "tail")
        assert index.built_partitions
        model.entity_embeddings[0] += 1.0
        model._bump_scoring_version()
        batch = index.candidate_lists([0], [0], "tail")
        assert index.rebuilds == 1
        assert batch.rows is not None

    def test_error_policy_refuses(self, model):
        index = IVFIndex(model, nlist=12, nprobe=3, on_stale="error")
        index.candidate_lists([0], [0], "tail")
        model._bump_scoring_version()
        with pytest.raises(StaleIndexError):
            index.candidate_lists([0], [0], "tail")

    def test_training_triggers_staleness(self, model):
        """A real resumed train step must invalidate the index."""
        from repro.nn.optimizers import make_optimizer

        index = IVFIndex(model, nlist=12, nprobe=3)
        before = index.candidate_lists([0], [0], "tail")
        positives = np.array([[0, 1, 0], [2, 3, 1]])
        negatives = np.array([[0, 5, 0], [2, 9, 1]])
        model.train_step(positives, negatives, make_optimizer("adam", 0.05))
        index.candidate_lists([0], [0], "tail")
        assert index.rebuilds == 1
        assert index.built_version == model.scoring_version
        del before


class TestBuildFanOut:
    def test_eager_build_covers_all_partitions(self, model):
        index = IVFIndex(model, nlist=12)
        report = index.build()
        assert report.partitions_built == model.num_relations * 2
        assert len(index.built_partitions) == model.num_relations * 2
        again = index.build()
        assert again.partitions_built == 0
        assert again.partitions_reused == model.num_relations * 2

    def test_worker_build_matches_in_process(self, model):
        serial = IVFIndex(model, nlist=12, seed=2)
        serial.build(sides=("tail",))
        pooled = IVFIndex(model, nlist=12, seed=2)
        pooled.build(sides=("tail",), workers=2)
        assert serial.built_partitions == pooled.built_partitions
        for key in serial.built_partitions:
            np.testing.assert_array_equal(
                serial._partitions[key].centroids, pooled._partitions[key].centroids
            )
            np.testing.assert_array_equal(
                serial._partitions[key].members, pooled._partitions[key].members
            )


class TestPersistence:
    def test_round_trip(self, model, tmp_path):
        index = IVFIndex(model, nlist=12, nprobe=4, spill=2, seed=3)
        index.build(sides=("tail",))
        index.save(tmp_path / "ix")
        loaded = load_index(tmp_path / "ix", model)
        assert isinstance(loaded, IVFIndex)
        assert (loaded.nlist, loaded.nprobe, loaded.spill) == (12, 4, 2)
        assert loaded.built_partitions == index.built_partitions
        a = index.candidate_lists([1, 2], [0, 3], "tail")
        b = loaded.candidate_lists([1, 2], [0, 3], "tail")
        for left, right in zip(a.rows, b.rows):
            np.testing.assert_array_equal(left, right)

    def test_fingerprint_mismatch_rebuilds(self, model, tmp_path):
        index = IVFIndex(model, nlist=12)
        index.build(sides=("tail",))
        index.save(tmp_path / "ix")
        model.entity_embeddings[0] += 1.0
        loaded = load_index(tmp_path / "ix", model)
        assert loaded.built_partitions == ()  # stale data discarded

    def test_fingerprint_mismatch_errors_when_asked(self, model, tmp_path):
        index = IVFIndex(model, nlist=12)
        index.save(tmp_path / "ix")
        model.entity_embeddings[0] += 1.0
        with pytest.raises(StaleIndexError):
            load_index(tmp_path / "ix", model, on_stale="error")

    def test_wrong_model_is_an_error(self, model, tmp_path):
        index = IVFIndex(model, nlist=12)
        index.save(tmp_path / "ix")
        other = make_complex(99, 4, 16, np.random.default_rng(5))
        with pytest.raises(ServingError):
            load_index(tmp_path / "ix", other)

    def test_fingerprint_tracks_parameters(self, model):
        before = model_fingerprint(model)
        model.relation_embeddings[0] += 1e-12
        assert model_fingerprint(model) != before


class TestExactIndex:
    def test_always_covers_all(self, model):
        index = ExactIndex(model)
        batch = index.candidate_lists([0, 1], [0, 1], "tail")
        assert batch.covers_all
        assert batch.num_scored == 2 * model.num_entities

    def test_never_stale(self, model):
        index = ExactIndex(model, on_stale="error")
        model._bump_scoring_version()
        index.candidate_lists([0], [0], "tail")  # must not raise

    def test_round_trip(self, model, tmp_path):
        ExactIndex(model).save(tmp_path / "ix")
        loaded = load_index(tmp_path / "ix", model)
        assert isinstance(loaded, ExactIndex)

    def test_build_is_a_noop(self, model):
        report = ExactIndex(model).build()
        assert report.partitions_built == 0
