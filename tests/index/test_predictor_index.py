"""Index-backed LinkPredictor: exactness, tie determinism, bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import (
    make_complex,
    make_cp,
    make_cph,
    make_distmult,
    make_quaternion,
)
from repro.errors import ServingError, StaleIndexError
from repro.index.exact import ExactIndex
from repro.index.ivf import IVFIndex
from repro.kg.synthetic import SyntheticKGConfig, generate_synthetic_kg
from repro.serving import LinkPredictor

pytestmark = pytest.mark.index

MAKERS = {
    "distmult": make_distmult,
    "complex": make_complex,
    "cp": make_cp,
    "cph": make_cph,
    "quaternion": make_quaternion,
}


@pytest.fixture(scope="module")
def dataset():
    return generate_synthetic_kg(
        SyntheticKGConfig(
            num_entities=250, num_clusters=16, num_domains=4, seed=11, name="ix-test"
        )
    )


def _model(dataset, name="complex"):
    return MAKERS[name](
        dataset.num_entities, dataset.num_relations, 16, np.random.default_rng(21)
    )


class TestExhaustiveBitIdentity:
    """nprobe == nlist (and ExactIndex) must match index-free serving exactly."""

    @pytest.mark.parametrize("name", sorted(MAKERS))
    @pytest.mark.parametrize("filtered", [False, True])
    def test_ivf_full_probe_matches_plain_predictor(self, dataset, name, filtered):
        model = _model(dataset, name)
        plain = LinkPredictor(model, dataset)
        indexed = LinkPredictor(
            model, dataset, index=IVFIndex(model, nlist=15, nprobe=15)
        )
        heads = dataset.test.heads[:12]
        relations = dataset.test.relations[:12]
        expected = plain.top_k_tails(heads, relations, k=8, filtered=filtered)
        got = indexed.top_k_tails(heads, relations, k=8, filtered=filtered)
        np.testing.assert_array_equal(expected.ids, got.ids)
        np.testing.assert_array_equal(expected.scores, got.scores)
        tails = dataset.test.tails[:12]
        expected = plain.top_k_heads(tails, relations, k=8, filtered=filtered)
        got = indexed.top_k_heads(tails, relations, k=8, filtered=filtered)
        np.testing.assert_array_equal(expected.ids, got.ids)
        np.testing.assert_array_equal(expected.scores, got.scores)

    def test_exact_index_matches_plain_predictor(self, dataset):
        model = _model(dataset)
        plain = LinkPredictor(model, dataset)
        indexed = LinkPredictor(model, dataset, index=ExactIndex(model))
        heads = dataset.test.heads[:20]
        relations = dataset.test.relations[:20]
        expected = plain.top_k_tails(heads, relations, k=10, filtered=True)
        got = indexed.top_k_tails(heads, relations, k=10, filtered=True)
        np.testing.assert_array_equal(expected.ids, got.ids)
        np.testing.assert_array_equal(expected.scores, got.scores)
        assert indexed.index_stats.probed_fraction == 1.0
        assert indexed.index_stats.exhaustive_queries == 20


class TestTieDeterminism:
    """The approximate path must keep the lower-id tie rule."""

    def test_rows_sorted_desc_ties_toward_lower_id(self, dataset):
        model = _model(dataset)
        predictor = LinkPredictor(
            model, dataset, index=IVFIndex(model, nlist=15, nprobe=4, spill=2)
        )
        result = predictor.top_k_tails(
            dataset.test.heads[:40], dataset.test.relations[:40], k=10, filtered=True
        )
        for row_ids, row_scores in zip(result.ids, result.scores):
            real = row_ids >= 0
            assert (np.diff(row_scores[real]) <= 0).all()
            for col in range(len(row_ids) - 1):
                if (
                    row_ids[col] >= 0
                    and row_ids[col + 1] >= 0
                    and row_scores[col] == row_scores[col + 1]
                    and np.isfinite(row_scores[col])
                ):
                    assert row_ids[col] < row_ids[col + 1]

    def test_degenerate_all_tied_scores_rank_by_id(self, dataset):
        """Bitwise-equal scores (zero embeddings ⇒ exact 0.0 everywhere)
        must come back in ascending-id order — the lower-id tie rule."""
        model = _model(dataset)
        model.entity_embeddings[:] = 0.0
        model._bump_scoring_version()
        index = IVFIndex(model, nlist=15, nprobe=3)
        predictor = LinkPredictor(model, dataset, index=index)
        result = predictor.top_k_tails([5], [0], k=10)
        batch = index.candidate_lists([5], [0], "tail")
        np.testing.assert_array_equal(result.ids[0], batch.rows[0][:10])
        assert (result.scores[0] == 0.0).all()

    def test_repeated_calls_identical(self, dataset):
        model = _model(dataset)
        predictor = LinkPredictor(
            model, dataset, index=IVFIndex(model, nlist=15, nprobe=4)
        )
        first = predictor.top_k_tails([3, 9], [0, 2], k=6)
        second = predictor.top_k_tails([3, 9], [0, 2], k=6)
        np.testing.assert_array_equal(first.ids, second.ids)
        np.testing.assert_array_equal(first.scores, second.scores)


class TestApproximateBehaviour:
    def test_scores_are_true_model_scores(self, dataset):
        model = _model(dataset)
        predictor = LinkPredictor(
            model, dataset, index=IVFIndex(model, nlist=15, nprobe=4), cache_size=0
        )
        result = predictor.top_k_tails([4], [1], k=5)
        expected = model.score_triples(
            np.full(5, 4), result.ids[0], np.full(5, 1)
        )
        np.testing.assert_allclose(result.scores[0], expected, atol=1e-10)

    def test_short_rows_pad_with_minus_one(self, dataset):
        model = _model(dataset)
        predictor = LinkPredictor(
            model, dataset, index=IVFIndex(model, nlist=125, nprobe=1, spill=1)
        )
        result = predictor.top_k_tails([4], [1], k=200)
        row = result.ids[0]
        assert (row >= 0).any()
        padded = row == -1
        assert padded.any()
        assert np.isneginf(result.scores[0][padded]).all()

    def test_name_level_predict_drops_pads(self, dataset):
        """predict() must not feed -1 pad ids into the vocabulary."""
        model = _model(dataset)
        predictor = LinkPredictor(
            model, dataset, index=IVFIndex(model, nlist=125, nprobe=1, spill=1)
        )
        predictions = predictor.predict(
            head=dataset.entities.name(4),
            relation=dataset.relations.name(1),
            k=200,
        )
        assert 0 < len(predictions) < 200
        assert all(name.startswith("entity_") for name, _ in predictions)

    def test_explicit_candidates_bypass_index(self, dataset):
        model = _model(dataset)
        indexed = LinkPredictor(model, dataset, index=IVFIndex(model, nlist=15))
        plain = LinkPredictor(model, dataset)
        shortlist = np.arange(30)
        a = indexed.top_k_tails([4], [1], k=5, candidates=shortlist)
        b = plain.top_k_tails([4], [1], k=5, candidates=shortlist)
        np.testing.assert_array_equal(a.ids, b.ids)
        assert indexed.index_stats.queries == 0

    def test_index_over_other_model_rejected(self, dataset):
        model = _model(dataset)
        other = _model(dataset)
        with pytest.raises(ServingError):
            LinkPredictor(model, dataset, index=IVFIndex(other, nlist=15))


class TestStalenessThroughTraining:
    def test_resumed_training_rebuilds(self, dataset):
        from repro.nn.optimizers import make_optimizer

        model = _model(dataset)
        index = IVFIndex(model, nlist=15, nprobe=4)
        predictor = LinkPredictor(model, dataset, index=index)
        predictor.top_k_tails([1], [0], k=5)
        positives = dataset.train.array[:32]
        negatives = positives.copy()
        negatives[:, 1] = (negatives[:, 1] + 7) % dataset.num_entities
        model.train_step(positives, negatives, make_optimizer("adam", 0.05))
        predictor.top_k_tails([1], [0], k=5)
        assert index.rebuilds == 1
        assert index.built_version == model.scoring_version

    def test_error_policy_propagates(self, dataset):
        model = _model(dataset)
        index = IVFIndex(model, nlist=15, nprobe=4, on_stale="error")
        predictor = LinkPredictor(model, dataset, index=index)
        predictor.top_k_tails([1], [0], k=5)
        model._bump_scoring_version()
        with pytest.raises(StaleIndexError):
            predictor.top_k_tails([1], [0], k=5)

    def test_clear_cache_invalidates_index(self, dataset):
        model = _model(dataset)
        index = IVFIndex(model, nlist=15, nprobe=4)
        predictor = LinkPredictor(model, dataset, index=index)
        predictor.top_k_tails([1], [0], k=5)
        assert index.built_partitions
        predictor.clear_cache()
        assert index.built_partitions == ()


class TestBookkeeping:
    def test_probed_fraction_sublinear(self, dataset):
        model = _model(dataset)
        predictor = LinkPredictor(
            model, dataset, index=IVFIndex(model, nlist=15, nprobe=2, spill=1)
        )
        predictor.top_k_tails(
            dataset.test.heads[:25], dataset.test.relations[:25], k=5
        )
        stats = predictor.index_stats
        assert stats.queries == 25
        assert 0.0 < stats.probed_fraction < 1.0

    def test_recall_sampling(self, dataset):
        model = _model(dataset)
        predictor = LinkPredictor(
            model,
            dataset,
            index=IVFIndex(model, nlist=15, nprobe=6),
            recall_sample_every=5,
        )
        predictor.top_k_tails(
            dataset.test.heads[:20], dataset.test.relations[:20], k=10
        )
        stats = predictor.index_stats
        assert stats.recall_checks == 4
        assert 0.0 <= stats.recall_estimate <= 1.0

    def test_no_index_no_stats(self, dataset):
        predictor = LinkPredictor(_model(dataset), dataset)
        assert predictor.index_stats is None
