"""Tests for the process-pool primitive."""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigError
from repro.parallel.pool import TaskOutcome, default_start_method, run_tasks

pytestmark = pytest.mark.parallel

_INIT_STATE: dict = {}


def _square(x: int) -> int:
    return x * x


def _fail_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("three is right out")
    return x


def _record_init(tag: str) -> None:
    _INIT_STATE["tag"] = tag


def _read_init(_: object) -> str:
    return _INIT_STATE.get("tag", "<unset>")


def _pid_of(_: object) -> int:
    return os.getpid()


def _exit_hard(_: object) -> None:
    os._exit(1)


class TestInProcess:
    def test_results_in_task_order(self):
        outcomes = run_tasks(_square, [3, 1, 4, 1, 5], workers=0)
        assert [o.value for o in outcomes] == [9, 1, 16, 1, 25]
        assert [o.index for o in outcomes] == [0, 1, 2, 3, 4]
        assert all(o.ok for o in outcomes)

    def test_error_is_captured_not_raised(self):
        outcomes = run_tasks(_fail_on_three, [1, 3, 5], workers=0)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "three is right out" in outcomes[1].error
        assert outcomes[1].value is None

    def test_initializer_runs_once_in_process(self):
        _INIT_STATE.clear()
        outcomes = run_tasks(
            _read_init, [0, 1], workers=0, initializer=_record_init, initargs=("hello",)
        )
        assert [o.value for o in outcomes] == ["hello", "hello"]

    def test_runs_in_this_process(self):
        outcomes = run_tasks(_pid_of, [0], workers=0)
        assert outcomes[0].value == os.getpid()

    def test_empty_tasks(self):
        assert run_tasks(_square, [], workers=0) == []
        assert run_tasks(_square, [], workers=4) == []

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigError, match="workers"):
            run_tasks(_square, [1], workers=-1)


class TestPool:
    def test_results_match_in_process(self):
        serial = run_tasks(_square, list(range(10)), workers=0)
        pooled = run_tasks(_square, list(range(10)), workers=3)
        assert [o.value for o in serial] == [o.value for o in pooled]

    def test_runs_in_other_processes(self):
        outcomes = run_tasks(_pid_of, [0, 1, 2, 3], workers=2)
        assert all(o.value != os.getpid() for o in outcomes)

    def test_worker_error_is_isolated(self):
        outcomes = run_tasks(_fail_on_three, [1, 3, 5], workers=2)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "ValueError" in outcomes[1].error
        assert outcomes[0].value == 1 and outcomes[2].value == 5

    def test_initializer_seeds_every_worker(self):
        outcomes = run_tasks(
            _read_init,
            list(range(6)),
            workers=2,
            initializer=_record_init,
            initargs=("pooled",),
        )
        assert {o.value for o in outcomes} == {"pooled"}

    def test_more_workers_than_tasks(self):
        outcomes = run_tasks(_square, [2], workers=8)
        assert [o.value for o in outcomes] == [4]

    def test_hard_worker_death_reports_instead_of_hanging(self):
        """os._exit bypasses Python exception handling entirely — the
        pool must surface the dead worker as error outcomes, not block."""
        outcomes = run_tasks(_exit_hard, [0, 1], workers=1)
        assert all(not o.ok for o in outcomes)
        assert "died" in outcomes[0].error


def test_default_start_method_is_known():
    assert default_start_method() in ("fork", "spawn")


def test_outcome_ok_property():
    assert TaskOutcome(index=0, value=1).ok
    assert not TaskOutcome(index=0, error="boom").ok
