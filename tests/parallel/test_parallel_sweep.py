"""Multi-process sweeps: parity with serial, caching, crash isolation."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError, SweepError
from repro.parallel.sweeps import config_hash, read_status, write_status
from repro.pipeline.config import DatasetSection, ModelSection, RunConfig, TrainingSection
from repro.pipeline.sweep import sweep

pytestmark = pytest.mark.parallel

GRID = {"model.name": ["distmult", "cph"]}


@pytest.fixture(scope="module")
def base() -> RunConfig:
    return RunConfig(
        dataset=DatasetSection(
            params={"num_entities": 80, "num_clusters": 6, "num_domains": 3, "seed": 1}
        ),
        model=ModelSection(name="complex", total_dim=8),
        training=TrainingSection(epochs=1, batch_size=256),
        seed=0,
    )


class TestParallelParity:
    def test_metrics_match_serial(self, base):
        serial = sweep(base, GRID)
        pooled = sweep(base, GRID, workers=2)
        assert [run.status for run in pooled] == ["completed", "completed"]
        for a, b in zip(serial, pooled):
            assert a.config == b.config
            assert a.test_metrics.mrr == b.test_metrics.mrr
            assert a.test_metrics.mr == b.test_metrics.mr
            assert a.test_metrics.hits == b.test_metrics.hits

    def test_pool_children_carry_metrics_not_results(self, base):
        pooled = sweep(base, GRID, workers=2)
        assert all(run.result is None for run in pooled)
        assert all(run.metrics is not None for run in pooled)
        serial = sweep(base, GRID)
        assert all(run.result is not None for run in serial)


class TestStatusArtifacts:
    def test_children_record_completed_status(self, base, tmp_path):
        runs = sweep(base, GRID, run_root=tmp_path, workers=2)
        for run in runs:
            status = read_status(run.run_dir)
            assert status["status"] == "completed"
            assert status["config_sha256"] == config_hash(run.config)
            assert status["error"] is None

    def test_serial_sweeps_record_status_too(self, base, tmp_path):
        runs = sweep(base, GRID, run_root=tmp_path)
        assert all(read_status(run.run_dir)["status"] == "completed" for run in runs)


class TestResultCache:
    def test_rerun_skips_completed_children(self, base, tmp_path):
        first = sweep(base, GRID, run_root=tmp_path, workers=2)
        second = sweep(base, GRID, run_root=tmp_path, workers=2)
        assert [run.status for run in second] == ["cached", "cached"]
        for a, b in zip(first, second):
            assert a.test_metrics.mrr == b.test_metrics.mrr
            assert a.test_metrics.hits == b.test_metrics.hits

    def test_cache_applies_to_serial_reruns(self, base, tmp_path):
        sweep(base, GRID, run_root=tmp_path, workers=2)
        rerun = sweep(base, GRID, run_root=tmp_path)
        assert [run.status for run in rerun] == ["cached", "cached"]

    def test_extended_grid_runs_only_new_children(self, base, tmp_path):
        sweep(base, GRID, run_root=tmp_path, workers=2)
        extended = sweep(
            base, {"model.name": ["distmult", "cph", "cp"]}, run_root=tmp_path, workers=2
        )
        assert [run.status for run in extended] == ["cached", "cached", "completed"]

    def test_config_change_invalidates_cache(self, base, tmp_path):
        runs = sweep(base, GRID, run_root=tmp_path, workers=2)
        # Tamper: keep the dir but claim it came from a different config.
        victim = runs[0].run_dir
        write_status(victim, "completed", "0" * 64)
        rerun = sweep(base, GRID, run_root=tmp_path, workers=2)
        assert [run.status for run in rerun] == ["completed", "cached"]

    def test_failed_children_are_retried(self, base, tmp_path):
        runs = sweep(base, GRID, run_root=tmp_path, workers=2)
        write_status(runs[1].run_dir, "failed", config_hash(runs[1].config), error="boom")
        rerun = sweep(base, GRID, run_root=tmp_path, workers=2)
        assert [run.status for run in rerun] == ["cached", "completed"]


class TestCrashIsolation:
    #: num_entities=4 fails validation inside the child's dataset build.
    BAD_GRID = {"dataset.params.num_entities": [80, 4]}

    def test_failing_child_recorded_not_fatal(self, base, tmp_path):
        runs = sweep(base, self.BAD_GRID, run_root=tmp_path, workers=2)
        assert [run.status for run in runs] == ["completed", "failed"]
        assert runs[1].ok is False
        assert "num_entities" in runs[1].error
        status = json.loads((runs[1].run_dir / "status.json").read_text())
        assert status["status"] == "failed"
        assert "num_entities" in status["error"]

    def test_serial_default_raises(self, base):
        with pytest.raises(ConfigError, match="num_entities"):
            sweep(base, self.BAD_GRID)

    def test_serial_record_mode_isolates(self, base, tmp_path):
        runs = sweep(base, self.BAD_GRID, run_root=tmp_path, on_error="record")
        assert [run.status for run in runs] == ["completed", "failed"]
        assert read_status(runs[1].run_dir)["status"] == "failed"

    def test_parallel_raise_mode_raises(self, base):
        with pytest.raises(SweepError, match="failed"):
            sweep(base, self.BAD_GRID, workers=2, on_error="raise")

    def test_bad_on_error_rejected(self, base):
        with pytest.raises(ConfigError, match="on_error"):
            sweep(base, GRID, on_error="ignore")
        with pytest.raises(ConfigError, match="workers"):
            sweep(base, GRID, workers=-2)


class TestNoNestedPools:
    def test_sweep_worker_runs_sharded_eval_in_process(self, base):
        """A sweep child whose config requests eval workers must fall
        back to in-process sharding inside the pool worker (no
        grandchild pools) — and still record identical metrics."""
        data = base.to_dict()
        data["parallel"] = {"eval_shards": 2, "eval_workers": 2}
        nested = RunConfig.from_dict(data)
        pooled = sweep(nested, {"model.name": ["distmult"]}, workers=1)
        serial = sweep(base, {"model.name": ["distmult"]})
        assert pooled[0].status == "completed"
        assert pooled[0].test_metrics.mrr == serial[0].test_metrics.mrr
        assert pooled[0].test_metrics.hits == serial[0].test_metrics.hits

    def test_worker_process_flag(self):
        from repro.parallel.pool import in_worker_process, run_tasks

        assert in_worker_process() is False
        outcomes = run_tasks(_probe_worker_flag, [0], workers=1)
        assert outcomes[0].value is True
        assert run_tasks(_probe_worker_flag, [0], workers=0)[0].value is False


def _probe_worker_flag(_: object) -> bool:
    from repro.parallel.pool import in_worker_process

    return in_worker_process()


class TestResumeFlag:
    def test_resume_false_reexecutes(self, base, tmp_path):
        first = sweep(base, GRID, run_root=tmp_path, workers=2)
        rerun = sweep(base, GRID, run_root=tmp_path, resume=False)
        assert [run.status for run in rerun] == ["completed", "completed"]
        assert all(run.result is not None for run in rerun)  # serial re-execution
        for a, b in zip(first, rerun):
            assert a.test_metrics.mrr == b.test_metrics.mrr


class TestPinnedDataset:
    def test_pinned_dataset_ships_to_workers(self, base, tiny_dataset):
        runs = sweep(base, {"model.name": ["distmult"]}, dataset=tiny_dataset, workers=2)
        assert runs[0].status == "completed"
        # tiny_dataset has 100 entities vs the config's 80: metrics were
        # computed on the pinned graph, proving it reached the worker.
        assert runs[0].metrics["test"].num_ranks == 2 * len(tiny_dataset.test)
