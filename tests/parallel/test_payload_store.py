"""Payload shipping of memory-mapped checkpoints: paths travel, not pages."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.models import make_complex
from repro.core.serialization import load_model, save_model
from repro.errors import CorruptArtifactError
from repro.parallel.payload import (
    describe_shipping,
    model_from_payload,
    model_to_payload,
)
from repro.parallel.pool import run_tasks

pytestmark = pytest.mark.parallel

NE, NR = 90, 4


def _mapped_model(tmp_path):
    model = make_complex(NE, NR, 16, np.random.default_rng(2))
    save_model(model, tmp_path / "ckpt", memmap=True)
    return model, load_model(tmp_path / "ckpt")


def _score_batch(model):
    rng = np.random.default_rng(1)
    heads = rng.integers(0, NE, 25)
    tails = rng.integers(0, NE, 25)
    rels = rng.integers(0, NR, 25)
    return np.asarray(model.score_triples(heads, tails, rels))


def _score_payload(payload):
    """Module-level worker: rebuild from the shipped payload and score."""
    return _score_batch(model_from_payload(payload))


class TestMappedShipping:
    def test_mapped_tables_ship_as_paths(self, tmp_path):
        _, mapped = _mapped_model(tmp_path)
        payload = model_to_payload(mapped)
        assert set(payload.mapped) == {"entity_embeddings", "relation_embeddings"}
        assert "omega" in payload.arrays  # small, in-memory, shipped by value

    def test_shipped_bytes_far_below_logical_bytes(self, tmp_path):
        _, mapped = _mapped_model(tmp_path)
        payload = model_to_payload(mapped)
        assert payload.shipped_nbytes() < payload.nbytes() / 10
        summary = describe_shipping(payload)
        assert "memmap" in summary and str(payload.shipped_nbytes()) in summary

    def test_in_memory_model_ships_everything_by_value(self):
        model = make_complex(NE, NR, 16, np.random.default_rng(2))
        payload = model_to_payload(model)
        assert payload.mapped == {}
        assert payload.shipped_nbytes() == payload.nbytes()

    def test_pickle_round_trip_is_bit_identical(self, tmp_path):
        source, mapped = _mapped_model(tmp_path)
        payload = pickle.loads(pickle.dumps(model_to_payload(mapped)))
        rebuilt = model_from_payload(payload)
        np.testing.assert_array_equal(_score_batch(rebuilt), _score_batch(source))

    def test_pickled_payload_is_small(self, tmp_path):
        """The pickle itself must not smuggle the mapped pages along."""
        _, mapped = _mapped_model(tmp_path)
        payload = model_to_payload(mapped)
        assert len(pickle.dumps(payload)) < payload.nbytes() / 2

    def test_worker_processes_rebuild_bit_identical(self, tmp_path):
        source, mapped = _mapped_model(tmp_path)
        payload = model_to_payload(mapped)
        outcomes = run_tasks(_score_payload, [payload, payload], workers=2)
        for outcome in outcomes:
            assert outcome.ok
            np.testing.assert_array_equal(outcome.value, _score_batch(source))

    def test_replaced_store_fails_loudly(self, tmp_path):
        _, mapped = _mapped_model(tmp_path)
        payload = model_to_payload(mapped)
        path, _, shape = payload.mapped["entity_embeddings"]
        wrong = np.zeros((3, *shape[1:]))
        import io as _io

        buffer = _io.BytesIO()
        np.save(buffer, wrong)
        with open(path, "wb") as handle:
            handle.write(buffer.getvalue())
        with pytest.raises(CorruptArtifactError):
            model_from_payload(payload)
