"""Worker-side determinism: same seed + same shard plan ⇒ same everything.

The satellite contract: for ``workers`` in {0, 1, 4}, sharded evaluation
must produce identical merged metrics and ``sweep`` must write identical
run-dir trees.  Multiprocessing works regardless of core count (workers
time-share on small machines), so these tests run everywhere — only
wall-clock *speedup* assertions belong behind a core-count guard.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.models import make_model
from repro.core.weights import PRESETS
from repro.parallel.sharded_eval import ShardedEvaluator
from repro.pipeline.config import DatasetSection, ModelSection, RunConfig, TrainingSection
from repro.pipeline.sweep import sweep
from repro.training.trainer import Trainer, TrainingConfig

pytestmark = pytest.mark.parallel

WORKER_COUNTS = (0, 1, 4)


@pytest.fixture(scope="module")
def trained_model(tiny_dataset):
    model = make_model(
        PRESETS.get("cph"),
        tiny_dataset.num_entities,
        tiny_dataset.num_relations,
        total_dim=16,
        rng=np.random.default_rng(11),
    )
    Trainer(
        tiny_dataset, TrainingConfig(epochs=2, batch_size=256, seed=3, verbose=False)
    ).train(model)
    return model


@pytest.mark.parametrize("axis", ["triples", "entities"])
def test_metrics_identical_across_worker_counts(tiny_dataset, trained_model, axis):
    results = [
        ShardedEvaluator(
            tiny_dataset, shards=3, workers=workers, shard_axis=axis, batch_size=32
        ).evaluate(trained_model, "test")
        for workers in WORKER_COUNTS
    ]
    reference = results[0]
    for result in results[1:]:
        for field in ("overall", "tail_side", "head_side"):
            got, want = getattr(result, field), getattr(reference, field)
            assert got.mrr == want.mrr
            assert got.mr == want.mr
            assert got.hits == want.hits
            assert got.num_ranks == want.num_ranks


def _tree_bytes(root: Path) -> dict[str, bytes]:
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


def test_sweep_run_dir_trees_identical_across_worker_counts(tmp_path):
    base = RunConfig(
        dataset=DatasetSection(
            params={"num_entities": 80, "num_clusters": 6, "num_domains": 3, "seed": 1}
        ),
        model=ModelSection(name="complex", total_dim=8),
        training=TrainingSection(epochs=1, batch_size=256),
        seed=0,
    )
    grid = {"model.name": ["distmult", "cph"]}
    trees = {}
    for workers in WORKER_COUNTS:
        root = tmp_path / f"workers{workers}"
        runs = sweep(base, grid, seeds=[0], run_root=root, workers=workers)
        assert all(run.ok for run in runs)
        trees[workers] = _tree_bytes(root)
    reference = trees[WORKER_COUNTS[0]]
    for workers in WORKER_COUNTS[1:]:
        tree = trees[workers]
        assert set(tree) == set(reference)
        for name, blob in reference.items():
            assert tree[name] == blob, f"{name} differs between workers=0 and workers={workers}"
    # The trees contain the full artifact set, not just status stubs.
    names = set(reference)
    assert any(name.endswith("config.json") for name in names)
    assert any(name.endswith("weights.npz") for name in names)
    assert any(name.endswith("metrics.json") for name in names)
    assert any(name.endswith("status.json") for name in names)


def test_seeded_children_differ_but_reproduce(tmp_path):
    """Different seeds → different results; same seed → same bytes."""
    base = RunConfig(
        dataset=DatasetSection(
            params={"num_entities": 80, "num_clusters": 6, "num_domains": 3, "seed": 1}
        ),
        model=ModelSection(name="distmult", total_dim=8),
        training=TrainingSection(epochs=1, batch_size=256),
        seed=0,
    )
    runs = sweep(base, {}, seeds=[0, 1], workers=2)
    assert runs[0].config.seed == 0 and runs[1].config.seed == 1
    assert runs[0].test_metrics.mrr != runs[1].test_metrics.mrr
    again = sweep(base, {}, seeds=[0, 1], workers=2)
    for a, b in zip(runs, again):
        assert a.test_metrics.mrr == b.test_metrics.mrr


def test_parallel_eval_inside_pipeline_matches_serial(tmp_path):
    """A RunConfig with a parallel section records the same metrics.json."""
    common = dict(
        dataset=DatasetSection(
            params={"num_entities": 80, "num_clusters": 6, "num_domains": 3, "seed": 1}
        ),
        model=ModelSection(name="complex", total_dim=8),
        training=TrainingSection(epochs=1, batch_size=256),
        seed=0,
    )
    from repro.pipeline.config import ParallelSection
    from repro.pipeline.runner import run_pipeline

    serial = run_pipeline(RunConfig(**common), run_dir=tmp_path / "serial")
    parallel = run_pipeline(
        RunConfig(**common, parallel=ParallelSection(eval_shards=3, eval_workers=2)),
        run_dir=tmp_path / "parallel",
    )
    assert serial.test_metrics.mrr == parallel.test_metrics.mrr
    assert serial.test_metrics.hits == parallel.test_metrics.hits
    serial_metrics = json.loads((tmp_path / "serial" / "metrics.json").read_text())
    parallel_metrics = json.loads((tmp_path / "parallel" / "metrics.json").read_text())
    assert serial_metrics == parallel_metrics
