"""Sharded evaluation: shard plans, payload round-trips, bit-identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.transe import TransE
from repro.core.models import make_model
from repro.core.weights import PRESETS
from repro.errors import EvaluationError, ModelError
from repro.eval.evaluator import LinkPredictionEvaluator
from repro.eval.ranking import comparison_counts, rank_of_true, ranks_from_counts
from repro.parallel.payload import model_from_payload, model_to_payload
from repro.parallel.sharded_eval import ShardedEvaluator, plan_shards
from repro.training.trainer import Trainer, TrainingConfig

pytestmark = pytest.mark.parallel


def _assert_same_metrics(a, b):
    """Bit-identical EvaluationResults, every aggregate and side."""
    for field in ("overall", "tail_side", "head_side"):
        ma, mb = getattr(a, field), getattr(b, field)
        assert ma.mrr == mb.mrr
        assert ma.mr == mb.mr
        assert ma.hits == mb.hits
        assert ma.num_ranks == mb.num_ranks


@pytest.fixture(scope="module")
def trained_model(tiny_dataset):
    model = make_model(
        PRESETS.get("complex"),
        tiny_dataset.num_entities,
        tiny_dataset.num_relations,
        total_dim=16,
        rng=np.random.default_rng(5),
    )
    config = TrainingConfig(epochs=3, batch_size=256, seed=0, verbose=False)
    Trainer(tiny_dataset, config).train(model)
    return model


@pytest.fixture(scope="module")
def serial_result(tiny_dataset, trained_model):
    return LinkPredictionEvaluator(tiny_dataset, batch_size=32).evaluate(
        trained_model, "test"
    )


class TestPlanShards:
    def test_bounds_cover_total(self):
        plan = plan_shards(100, 3, "triples", align=8)
        assert plan.bounds[0] == 0 and plan.bounds[-1] == 100
        assert list(plan.bounds) == sorted(plan.bounds)

    def test_interior_bounds_are_aligned(self):
        plan = plan_shards(103, 4, "triples", align=16)
        for bound in plan.bounds[1:-1]:
            assert bound % 16 == 0

    def test_slices_skip_empty_shards(self):
        plan = plan_shards(2, 5, "entities")
        covered = []
        for start, stop in plan.slices():
            assert stop > start
            covered.extend(range(start, stop))
        assert covered == [0, 1]

    def test_single_shard_is_everything(self):
        assert plan_shards(7, 1, "entities").slices() == [(0, 7)]

    def test_validation(self):
        with pytest.raises(EvaluationError, match="axis"):
            plan_shards(10, 2, "relations")
        with pytest.raises(EvaluationError, match="shards"):
            plan_shards(10, 0, "triples")
        with pytest.raises(EvaluationError, match="alignment"):
            plan_shards(10, 2, "triples", align=0)


class TestPayload:
    def test_round_trip_scores_bit_identical(self, trained_model):
        rebuilt = model_from_payload(model_to_payload(trained_model))
        heads = np.arange(10, dtype=np.int64)
        tails = np.arange(10, 20, dtype=np.int64)
        relations = np.zeros(10, dtype=np.int64)
        assert np.array_equal(
            rebuilt.score_triples(heads, tails, relations),
            trained_model.score_triples(heads, tails, relations),
        )
        assert np.array_equal(
            rebuilt.score_all_tails(heads, relations),
            trained_model.score_all_tails(heads, relations),
        )

    def test_engine_flag_preserved(self, tiny_dataset):
        dense = make_model(
            PRESETS.get("cph"),
            tiny_dataset.num_entities,
            tiny_dataset.num_relations,
            total_dim=8,
            rng=np.random.default_rng(0),
            use_compiled_kernel=False,
        )
        rebuilt = model_from_payload(model_to_payload(dense))
        assert rebuilt.use_compiled_kernel is False

    def test_payload_is_a_snapshot(self, trained_model):
        payload = model_to_payload(trained_model)
        before = payload.arrays["entity_embeddings"].copy()
        trained_model.entity_embeddings[0] += 1.0
        try:
            assert np.array_equal(payload.arrays["entity_embeddings"], before)
        finally:
            trained_model.entity_embeddings[0] -= 1.0

    def test_non_multi_embedding_models_rejected(self, tiny_dataset):
        transe = TransE(
            tiny_dataset.num_entities,
            tiny_dataset.num_relations,
            8,
            np.random.default_rng(0),
        )
        with pytest.raises(ModelError, match="workers=0"):
            model_to_payload(transe)


class TestCountHelpers:
    def test_counts_reassemble_rank_of_true(self, rng):
        scores = rng.normal(size=50)
        scores[13] = scores[7]  # force an exact tie with the true entity
        true_index = 7
        filters = np.array([2, 9, 40])
        for policy in ("average", "optimistic", "pessimistic"):
            expected = rank_of_true(scores, true_index, filters, policy)
            better = np.zeros(1, dtype=np.int64)
            ties = np.zeros(1, dtype=np.int64)
            for start in range(0, 50, 17):  # deliberately unaligned blocks
                stop = min(start + 17, 50)
                b, t = comparison_counts(
                    scores[None, start:stop],
                    np.array([scores[true_index]]),
                    start,
                    np.array([true_index]),
                    [filters],
                )
                better += b
                ties += t
            assert ranks_from_counts(better, ties, policy)[0] == expected

    def test_bad_policy_rejected(self):
        with pytest.raises(EvaluationError, match="tie policy"):
            ranks_from_counts(np.array([1]), np.array([0]), "hopeful")


class TestShardedBitIdentity:
    @pytest.mark.parametrize("axis", ["triples", "entities"])
    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_in_process_sharding(self, tiny_dataset, trained_model, serial_result, axis, shards):
        evaluator = ShardedEvaluator(
            tiny_dataset, shards=shards, workers=0, shard_axis=axis, batch_size=32
        )
        _assert_same_metrics(evaluator.evaluate(trained_model, "test"), serial_result)

    @pytest.mark.parametrize("axis", ["triples", "entities"])
    def test_worker_sharding(self, tiny_dataset, trained_model, serial_result, axis):
        evaluator = ShardedEvaluator(
            tiny_dataset, shards=3, workers=2, shard_axis=axis, batch_size=32
        )
        _assert_same_metrics(evaluator.evaluate(trained_model, "test"), serial_result)

    def test_unaligned_batch_size(self, tiny_dataset, trained_model):
        serial = LinkPredictionEvaluator(tiny_dataset, batch_size=7).evaluate(
            trained_model, "test"
        )
        sharded = ShardedEvaluator(
            tiny_dataset, shards=4, workers=0, batch_size=7
        ).evaluate(trained_model, "test")
        _assert_same_metrics(sharded, serial)

    def test_degenerate_tie_model(self, tiny_dataset):
        """ω with zero rows scores whole candidate blocks exactly equal —
        the tie-handling stress case for count merging."""
        model = make_model(
            PRESETS.get("bad_example_1"),
            tiny_dataset.num_entities,
            tiny_dataset.num_relations,
            total_dim=16,
            rng=np.random.default_rng(7),
        )
        serial = LinkPredictionEvaluator(tiny_dataset, batch_size=32).evaluate(model, "test")
        for axis in ("triples", "entities"):
            sharded = ShardedEvaluator(
                tiny_dataset, shards=3, workers=0, shard_axis=axis, batch_size=32
            ).evaluate(model, "test")
            _assert_same_metrics(sharded, serial)

    def test_raw_protocol_and_max_triples(self, tiny_dataset, trained_model):
        serial = LinkPredictionEvaluator(
            tiny_dataset, batch_size=16, filtered=False
        ).evaluate_triples(trained_model, tiny_dataset.train, max_triples=40)
        sharded = ShardedEvaluator(
            tiny_dataset, shards=2, workers=0, filtered=False, batch_size=16
        ).evaluate_triples(trained_model, tiny_dataset.train, max_triples=40)
        _assert_same_metrics(sharded, serial)

    def test_in_process_sharding_supports_any_model(self, tiny_dataset):
        transe = TransE(
            tiny_dataset.num_entities,
            tiny_dataset.num_relations,
            8,
            np.random.default_rng(3),
        )
        serial = LinkPredictionEvaluator(tiny_dataset, batch_size=32).evaluate(transe, "test")
        sharded = ShardedEvaluator(tiny_dataset, shards=3, workers=0, batch_size=32).evaluate(
            transe, "test"
        )
        _assert_same_metrics(sharded, serial)


class TestValidation:
    def test_constructor_rejects_bad_arguments(self, tiny_dataset):
        with pytest.raises(EvaluationError):
            ShardedEvaluator(tiny_dataset, shards=0)
        with pytest.raises(EvaluationError):
            ShardedEvaluator(tiny_dataset, workers=-1)
        with pytest.raises(EvaluationError):
            ShardedEvaluator(tiny_dataset, shard_axis="relations")
        with pytest.raises(EvaluationError):
            ShardedEvaluator(tiny_dataset, tie_policy="hopeful")
        with pytest.raises(EvaluationError):
            ShardedEvaluator(tiny_dataset, batch_size=0)

    def test_unknown_split(self, tiny_dataset, trained_model):
        with pytest.raises(EvaluationError, match="split"):
            ShardedEvaluator(tiny_dataset).evaluate(trained_model, "dev")

    def test_workers_require_payloadable_model(self, tiny_dataset):
        transe = TransE(
            tiny_dataset.num_entities,
            tiny_dataset.num_relations,
            8,
            np.random.default_rng(3),
        )
        with pytest.raises(ModelError, match="multi-embedding"):
            ShardedEvaluator(tiny_dataset, shards=2, workers=1).evaluate(transe, "test")
