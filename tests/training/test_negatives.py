"""Unit + property tests for negative sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.kg.triples import TripleSet
from repro.training.negatives import BernoulliNegativeSampler, UniformNegativeSampler


@pytest.fixture
def positives(rng):
    return np.column_stack([
        rng.integers(0, 50, 40), rng.integers(0, 50, 40), rng.integers(0, 4, 40)
    ])


class TestUniformSampler:
    def test_output_shape(self, positives, rng):
        sampler = UniformNegativeSampler(num_entities=50, num_negatives=3)
        negatives = sampler.corrupt(positives, rng)
        assert negatives.shape == (120, 3)

    def test_exactly_one_slot_corrupted(self, positives, rng):
        sampler = UniformNegativeSampler(num_entities=50)
        negatives = sampler.corrupt(positives, rng)
        same_head = negatives[:, 0] == positives[:, 0]
        same_tail = negatives[:, 1] == positives[:, 1]
        # relation never corrupted
        assert np.array_equal(negatives[:, 2], positives[:, 2])
        # exactly one of head/tail differs per row
        assert np.all(same_head ^ same_tail)

    def test_avoid_identity(self, rng):
        positives = np.array([[0, 1, 0]] * 200)
        sampler = UniformNegativeSampler(num_entities=2, avoid_identity=True)
        negatives = sampler.corrupt(positives, rng)
        # with 2 entities the replacement must always be "the other" entity
        changed_heads = negatives[negatives[:, 0] != 0]
        assert np.all(changed_heads[:, 0] == 1)

    def test_negatives_differ_from_positive_triple(self, positives, rng):
        sampler = UniformNegativeSampler(num_entities=50)
        negatives = sampler.corrupt(positives, rng)
        assert not np.any(np.all(negatives == positives, axis=1))

    def test_head_tail_corruption_balanced(self, rng):
        positives = np.tile(np.array([[3, 7, 0]]), (4000, 1))
        sampler = UniformNegativeSampler(num_entities=100)
        negatives = sampler.corrupt(positives, rng)
        head_rate = np.mean(negatives[:, 0] != 3)
        assert 0.45 < head_rate < 0.55

    def test_bad_config_raises(self):
        with pytest.raises(ConfigError):
            UniformNegativeSampler(num_entities=1)
        with pytest.raises(ConfigError):
            UniformNegativeSampler(num_entities=5, num_negatives=0)

    def test_bad_positive_shape_raises(self, rng):
        with pytest.raises(ConfigError):
            UniformNegativeSampler(num_entities=5).corrupt(np.zeros((3, 2), int), rng)

    @settings(max_examples=20)
    @given(st.integers(2, 30), st.integers(1, 4))
    def test_property_entities_in_range(self, num_entities, num_negatives):
        rng = np.random.default_rng(0)
        positives = np.array([[0, 1, 0], [1, 0, 0]])
        sampler = UniformNegativeSampler(num_entities, num_negatives)
        negatives = sampler.corrupt(positives, rng)
        assert negatives[:, :2].max() < num_entities
        assert negatives[:, :2].min() >= 0


class TestBernoulliSampler:
    def test_head_probabilities_reflect_cardinality(self):
        # relation 0: one head with many tails (1-to-N) => corrupt head often
        rows = [[0, t, 0] for t in range(1, 9)] + [[h, 9, 1] for h in range(8)]
        train = TripleSet(rows, 10, 2)
        sampler = BernoulliNegativeSampler(train)
        assert sampler.head_probability[0] > 0.8
        assert sampler.head_probability[1] < 0.2

    def test_corruption_follows_probabilities(self, rng):
        rows = [[0, t, 0] for t in range(1, 9)]
        train = TripleSet(rows, 10, 1)
        sampler = BernoulliNegativeSampler(train)
        positives = np.tile(np.array([[0, 1, 0]]), (2000, 1))
        negatives = sampler.corrupt(positives, rng)
        head_rate = np.mean(negatives[:, 0] != 0)
        assert head_rate > 0.8

    def test_unseen_relation_defaults_to_half(self):
        train = TripleSet([[0, 1, 0]], 5, 3)
        sampler = BernoulliNegativeSampler(train)
        assert sampler.head_probability[2] == pytest.approx(0.5)

    def test_output_shape(self, rng):
        train = TripleSet([[0, 1, 0], [1, 2, 0]], 5, 1)
        sampler = BernoulliNegativeSampler(train, num_negatives=2)
        negatives = sampler.corrupt(np.array([[0, 1, 0]]), rng)
        assert negatives.shape == (2, 3)


class TestVectorisedCorruption:
    """The single-draw vectorised corrupt paths (no loop over rounds)."""

    def test_row_major_round_ordering(self, rng):
        # Negative i*b + j must corrupt positive j: each b-sized block is a
        # full corrupted copy of the positive batch.
        positives = np.column_stack([
            np.arange(10), np.arange(10, 20), np.tile(np.arange(2), 5)
        ])
        sampler = UniformNegativeSampler(num_entities=50, num_negatives=4)
        negatives = sampler.corrupt(positives, rng)
        assert negatives.shape == (40, 3)
        for round_index in range(4):
            block = negatives[round_index * 10 : (round_index + 1) * 10]
            same_head = block[:, 0] == positives[:, 0]
            same_tail = block[:, 1] == positives[:, 1]
            assert np.array_equal(block[:, 2], positives[:, 2])
            assert np.all(same_head ^ same_tail)

    def test_bernoulli_multi_round_ordering_and_rate(self, rng):
        rows = [[0, t, 0] for t in range(1, 9)]
        train = TripleSet(rows, 10, 1)
        sampler = BernoulliNegativeSampler(train, num_negatives=3)
        positives = np.tile(np.array([[0, 1, 0]]), (500, 1))
        negatives = sampler.corrupt(positives, rng)
        assert negatives.shape == (1500, 3)
        # every round keeps the relation and obeys the skewed head rate
        for round_index in range(3):
            block = negatives[round_index * 500 : (round_index + 1) * 500]
            assert np.array_equal(block[:, 2], positives[:, 2])
            assert np.mean(block[:, 0] != 0) > 0.8

    def test_rounds_are_independent_draws(self, rng):
        positives = np.tile(np.array([[3, 7, 0]]), (200, 1))
        sampler = UniformNegativeSampler(num_entities=1000, num_negatives=2)
        negatives = sampler.corrupt(positives, rng)
        first, second = negatives[:200], negatives[200:]
        # with 1000 entities two identical rounds would be astronomical
        assert not np.array_equal(first, second)


class TestBernoulliBincountProbabilities:
    """The O(T) bincount computation must match the per-relation loop."""

    @staticmethod
    def _loop_reference(train: TripleSet) -> np.ndarray:
        probs = np.full(train.num_relations, 0.5, dtype=np.float64)
        arr = train.array
        for relation in range(train.num_relations):
            sub = arr[arr[:, 2] == relation]
            if len(sub) == 0:
                continue
            tails_per_head = len(sub) / len(np.unique(sub[:, 0]))
            heads_per_tail = len(sub) / len(np.unique(sub[:, 1]))
            probs[relation] = tails_per_head / (tails_per_head + heads_per_tail)
        return probs

    @settings(max_examples=25)
    @given(st.integers(0, 4), st.integers(1, 120))
    def test_property_matches_loop_reference(self, seed, num_triples):
        rng = np.random.default_rng(seed)
        num_entities, num_relations = 15, 6
        rows = np.column_stack([
            rng.integers(0, num_entities, num_triples),
            rng.integers(0, num_entities, num_triples),
            rng.integers(0, num_relations, num_triples),
        ])
        train = TripleSet(rows, num_entities, num_relations)
        fast = BernoulliNegativeSampler._head_probabilities(train)
        assert np.allclose(fast, self._loop_reference(train), atol=1e-12)

    def test_empty_train_set_defaults_to_half(self):
        train = TripleSet(np.zeros((0, 3), dtype=np.int64), 5, 3)
        probs = BernoulliNegativeSampler._head_probabilities(train)
        assert np.allclose(probs, 0.5)
