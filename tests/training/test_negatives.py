"""Unit + property tests for negative sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.kg.triples import TripleSet
from repro.training.negatives import BernoulliNegativeSampler, UniformNegativeSampler


@pytest.fixture
def positives(rng):
    return np.column_stack([
        rng.integers(0, 50, 40), rng.integers(0, 50, 40), rng.integers(0, 4, 40)
    ])


class TestUniformSampler:
    def test_output_shape(self, positives, rng):
        sampler = UniformNegativeSampler(num_entities=50, num_negatives=3)
        negatives = sampler.corrupt(positives, rng)
        assert negatives.shape == (120, 3)

    def test_exactly_one_slot_corrupted(self, positives, rng):
        sampler = UniformNegativeSampler(num_entities=50)
        negatives = sampler.corrupt(positives, rng)
        same_head = negatives[:, 0] == positives[:, 0]
        same_tail = negatives[:, 1] == positives[:, 1]
        # relation never corrupted
        assert np.array_equal(negatives[:, 2], positives[:, 2])
        # exactly one of head/tail differs per row
        assert np.all(same_head ^ same_tail)

    def test_avoid_identity(self, rng):
        positives = np.array([[0, 1, 0]] * 200)
        sampler = UniformNegativeSampler(num_entities=2, avoid_identity=True)
        negatives = sampler.corrupt(positives, rng)
        # with 2 entities the replacement must always be "the other" entity
        changed_heads = negatives[negatives[:, 0] != 0]
        assert np.all(changed_heads[:, 0] == 1)

    def test_negatives_differ_from_positive_triple(self, positives, rng):
        sampler = UniformNegativeSampler(num_entities=50)
        negatives = sampler.corrupt(positives, rng)
        assert not np.any(np.all(negatives == positives, axis=1))

    def test_head_tail_corruption_balanced(self, rng):
        positives = np.tile(np.array([[3, 7, 0]]), (4000, 1))
        sampler = UniformNegativeSampler(num_entities=100)
        negatives = sampler.corrupt(positives, rng)
        head_rate = np.mean(negatives[:, 0] != 3)
        assert 0.45 < head_rate < 0.55

    def test_bad_config_raises(self):
        with pytest.raises(ConfigError):
            UniformNegativeSampler(num_entities=1)
        with pytest.raises(ConfigError):
            UniformNegativeSampler(num_entities=5, num_negatives=0)

    def test_bad_positive_shape_raises(self, rng):
        with pytest.raises(ConfigError):
            UniformNegativeSampler(num_entities=5).corrupt(np.zeros((3, 2), int), rng)

    @settings(max_examples=20)
    @given(st.integers(2, 30), st.integers(1, 4))
    def test_property_entities_in_range(self, num_entities, num_negatives):
        rng = np.random.default_rng(0)
        positives = np.array([[0, 1, 0], [1, 0, 0]])
        sampler = UniformNegativeSampler(num_entities, num_negatives)
        negatives = sampler.corrupt(positives, rng)
        assert negatives[:, :2].max() < num_entities
        assert negatives[:, :2].min() >= 0


class TestBernoulliSampler:
    def test_head_probabilities_reflect_cardinality(self):
        # relation 0: one head with many tails (1-to-N) => corrupt head often
        rows = [[0, t, 0] for t in range(1, 9)] + [[h, 9, 1] for h in range(8)]
        train = TripleSet(rows, 10, 2)
        sampler = BernoulliNegativeSampler(train)
        assert sampler.head_probability[0] > 0.8
        assert sampler.head_probability[1] < 0.2

    def test_corruption_follows_probabilities(self, rng):
        rows = [[0, t, 0] for t in range(1, 9)]
        train = TripleSet(rows, 10, 1)
        sampler = BernoulliNegativeSampler(train)
        positives = np.tile(np.array([[0, 1, 0]]), (2000, 1))
        negatives = sampler.corrupt(positives, rng)
        head_rate = np.mean(negatives[:, 0] != 0)
        assert head_rate > 0.8

    def test_unseen_relation_defaults_to_half(self):
        train = TripleSet([[0, 1, 0]], 5, 3)
        sampler = BernoulliNegativeSampler(train)
        assert sampler.head_probability[2] == pytest.approx(0.5)

    def test_output_shape(self, rng):
        train = TripleSet([[0, 1, 0], [1, 2, 0]], 5, 1)
        sampler = BernoulliNegativeSampler(train, num_negatives=2)
        negatives = sampler.corrupt(np.array([[0, 1, 0]]), rng)
        assert negatives.shape == (2, 3)
