"""Unit tests for :mod:`repro.training.batching`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kg.triples import TripleSet
from repro.training.batching import iterate_batches, num_batches


@pytest.fixture
def triples():
    rows = [[i % 7, (i + 1) % 7, i % 2] for i in range(25)]
    return TripleSet(rows, 7, 2)


class TestIterateBatches:
    def test_covers_all_triples_once(self, triples, rng):
        seen = np.concatenate(list(iterate_batches(triples, 8, rng)))
        assert len(seen) == 25
        assert sorted(map(tuple, seen.tolist())) == sorted(
            map(tuple, triples.array.tolist())
        )

    def test_batch_sizes(self, triples, rng):
        sizes = [len(b) for b in iterate_batches(triples, 8, rng)]
        assert sizes == [8, 8, 8, 1]

    def test_drop_last(self, triples, rng):
        sizes = [len(b) for b in iterate_batches(triples, 8, rng, drop_last=True)]
        assert sizes == [8, 8, 8]

    def test_no_shuffle_preserves_order(self, triples, rng):
        batches = list(iterate_batches(triples, 100, rng, shuffle=False))
        assert np.array_equal(batches[0], triples.array)

    def test_shuffle_changes_order(self, triples):
        rng = np.random.default_rng(1)
        shuffled = np.concatenate(list(iterate_batches(triples, 100, rng)))
        assert not np.array_equal(shuffled, triples.array)

    def test_bad_batch_size_raises(self, triples, rng):
        with pytest.raises(ConfigError):
            list(iterate_batches(triples, 0, rng))


class TestNumBatches:
    @pytest.mark.parametrize("n,bs,drop,expected", [
        (25, 8, False, 4),
        (25, 8, True, 3),
        (24, 8, False, 3),
        (0, 8, False, 0),
        (1, 8, False, 1),
    ])
    def test_counts(self, n, bs, drop, expected):
        assert num_batches(n, bs, drop) == expected

    def test_matches_iterator(self, triples, rng):
        assert num_batches(len(triples), 8) == len(list(iterate_batches(triples, 8, rng)))

    def test_bad_batch_size_raises(self):
        with pytest.raises(ConfigError):
            num_batches(10, 0)
