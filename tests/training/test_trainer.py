"""Unit tests for the training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import make_complex
from repro.errors import ConfigError, TrainingError
from repro.training.trainer import Trainer, TrainingConfig, train_model


def _model(dataset, seed=0, **kwargs):
    return make_complex(
        dataset.num_entities, dataset.num_relations, total_dim=8,
        rng=np.random.default_rng(seed), **kwargs,
    )


class TestTrainingConfig:
    def test_defaults_valid(self):
        config = TrainingConfig()
        assert config.num_negatives == 1  # the paper fixes 1 negative

    @pytest.mark.parametrize("kwargs", [
        {"epochs": 0}, {"batch_size": 0}, {"num_negatives": 0},
    ])
    def test_invalid_raises(self, kwargs):
        with pytest.raises(ConfigError):
            TrainingConfig(**kwargs)


class TestTrainer:
    def test_loss_decreases(self, tiny_dataset):
        config = TrainingConfig(epochs=15, batch_size=256, learning_rate=0.02, seed=1)
        result = Trainer(tiny_dataset, config).train(_model(tiny_dataset))
        losses = result.history.losses
        assert losses[-1] < losses[0]

    def test_history_length_matches_epochs(self, tiny_dataset):
        config = TrainingConfig(epochs=5, batch_size=256)
        result = Trainer(tiny_dataset, config).train(_model(tiny_dataset))
        assert len(result.history) == 5
        assert result.epochs_run == 5
        assert not result.stopped_early

    def test_validation_runs_on_schedule(self, tiny_dataset):
        config = TrainingConfig(epochs=6, batch_size=256, validate_every=3, patience=100)
        result = Trainer(tiny_dataset, config).train(_model(tiny_dataset))
        evaluated = [epoch for epoch, _ in result.history.validation_mrrs]
        assert evaluated == [3, 6]

    def test_early_stopping_triggers(self, tiny_dataset):
        # Tiny LR so the model cannot improve: the stopper must fire after
        # patience expires rather than running all epochs.
        config = TrainingConfig(
            epochs=50, batch_size=256, learning_rate=1e-9,
            validate_every=2, patience=4, seed=0,
        )
        result = Trainer(tiny_dataset, config).train(_model(tiny_dataset))
        assert result.stopped_early
        assert result.epochs_run <= 8

    def test_reproducible_given_seed(self, tiny_dataset):
        config = TrainingConfig(epochs=3, batch_size=256, seed=9)
        first = Trainer(tiny_dataset, config).train(_model(tiny_dataset, seed=4))
        second = Trainer(tiny_dataset, config).train(_model(tiny_dataset, seed=4))
        assert first.history.losses == second.history.losses

    def test_divergence_detected(self, tiny_dataset):
        class ExplodingModel:
            name = "boom"

            def train_step(self, positives, negatives, optimizer):
                return float("nan")

        config = TrainingConfig(epochs=2, batch_size=256)
        with pytest.raises(TrainingError, match="diverged"):
            Trainer(tiny_dataset, config).train(ExplodingModel())

    def test_train_model_convenience(self, tiny_dataset):
        result = train_model(
            _model(tiny_dataset), tiny_dataset, TrainingConfig(epochs=2, batch_size=256)
        )
        assert result.epochs_run == 2

    def test_more_negatives_supported(self, tiny_dataset):
        config = TrainingConfig(epochs=2, batch_size=256, num_negatives=4)
        result = Trainer(tiny_dataset, config).train(_model(tiny_dataset))
        assert len(result.history) == 2
