"""Unit tests for :mod:`repro.training.callbacks`."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.training.callbacks import (
    ConsoleLogger,
    EarlyStopping,
    EpochRecord,
    TrainingHistory,
)


class TestTrainingHistory:
    def test_accumulates_records(self):
        history = TrainingHistory()
        history.append(EpochRecord(epoch=1, loss=0.5))
        history.append(EpochRecord(epoch=2, loss=0.4, validation_mrr=0.7))
        assert len(history) == 2
        assert history.losses == [0.5, 0.4]

    def test_validation_mrrs_only_evaluated_epochs(self):
        history = TrainingHistory()
        history.append(EpochRecord(1, 0.5))
        history.append(EpochRecord(2, 0.4, validation_mrr=0.6))
        history.append(EpochRecord(3, 0.3, validation_mrr=0.8))
        assert history.validation_mrrs == [(2, 0.6), (3, 0.8)]
        assert history.best_validation_mrr == 0.8

    def test_best_none_when_never_validated(self):
        history = TrainingHistory()
        history.append(EpochRecord(1, 0.5))
        assert history.best_validation_mrr is None


class TestEarlyStopping:
    def test_paper_schedule(self):
        """§5.3: check every 50 epochs, 100 epochs patience."""
        stopper = EarlyStopping(check_every=50, patience=100)
        assert stopper.should_validate(50)
        assert not stopper.should_validate(49)
        assert not stopper.update(50, 0.5)
        assert not stopper.update(100, 0.5)   # 50 epochs since best, keep going
        assert stopper.update(150, 0.5)       # 100 epochs since best -> stop

    def test_improvement_resets_patience(self):
        stopper = EarlyStopping(check_every=10, patience=20)
        assert not stopper.update(10, 0.5)
        assert not stopper.update(20, 0.6)  # improved
        assert not stopper.update(30, 0.6)
        assert stopper.update(40, 0.6)

    def test_min_improvement_threshold(self):
        stopper = EarlyStopping(check_every=10, patience=10, min_improvement=0.1)
        assert not stopper.update(10, 0.5)
        # +0.05 < min_improvement, counts as no improvement
        assert stopper.update(20, 0.55)

    def test_best_epoch_tracked(self):
        stopper = EarlyStopping(check_every=10, patience=30)
        stopper.update(10, 0.5)
        stopper.update(20, 0.7)
        stopper.update(30, 0.6)
        assert stopper.best_epoch == 20
        assert stopper.best_mrr == 0.7

    def test_bad_config_raises(self):
        with pytest.raises(ConfigError):
            EarlyStopping(check_every=0)
        with pytest.raises(ConfigError):
            EarlyStopping(check_every=50, patience=10)
        with pytest.raises(ConfigError):
            EarlyStopping(min_improvement=-1.0)


class TestConsoleLogger:
    def test_prints_when_due(self, capsys):
        logger = ConsoleLogger(every=2, enabled=True)
        logger.on_epoch(EpochRecord(2, 0.5, validation_mrr=0.9), "m")
        out = capsys.readouterr().out
        assert "epoch" in out and "0.9" in out

    def test_silent_when_disabled(self, capsys):
        logger = ConsoleLogger(every=1, enabled=False)
        logger.on_epoch(EpochRecord(1, 0.5), "m")
        assert capsys.readouterr().out == ""

    def test_silent_when_not_due(self, capsys):
        logger = ConsoleLogger(every=10, enabled=True)
        logger.on_epoch(EpochRecord(3, 0.5), "m")
        assert capsys.readouterr().out == ""

    def test_bad_every_raises(self):
        with pytest.raises(ConfigError):
            ConsoleLogger(every=0)
