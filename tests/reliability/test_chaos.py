"""Chaos acceptance scenarios: injected disasters, bit-identical recovery.

The three end-to-end stories the fault-tolerance layer exists for:

1. a worker process is hard-killed mid-evaluation and the sharded
   evaluator heals it through a pool retry — merged metrics bit-equal
   to an undisturbed run;
2. a sweep child's artifacts are torn on disk and resume heals the
   child by re-running it — final sweep results bit-equal to a clean
   sweep;
3. a persisted index is byte-flipped and serving degrades to the exact
   full-sweep path — answers bit-equal to serving without an index.

Determinism makes "recovered" checkable as *equality*, not vibes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability.faults import FaultPlan, FaultSpec

pytestmark = pytest.mark.reliability


class TestWorkerCrashMidEvaluation:
    def test_crash_heals_to_bit_identical_metrics(self, tiny_dataset):
        from repro.core.models import make_complex
        from repro.parallel.sharded_eval import ShardedEvaluator

        model = make_complex(
            tiny_dataset.num_entities,
            tiny_dataset.num_relations,
            8,
            np.random.default_rng(7),
        )
        clean = ShardedEvaluator(
            tiny_dataset, shards=4, workers=0
        ).evaluate(model, "test")
        plan = FaultPlan.of(
            FaultSpec(site="pool.task", kind="crash", match="task:1;attempt:0")
        )
        chaotic = ShardedEvaluator(
            tiny_dataset, shards=4, workers=2, retries=1, fault_plan=plan
        ).evaluate(model, "test")
        assert chaotic.overall.mrr == clean.overall.mrr
        assert chaotic.overall.mr == clean.overall.mr
        assert chaotic.overall.hits == clean.overall.hits
        assert chaotic.tail_side.mrr == clean.tail_side.mrr
        assert chaotic.head_side.mrr == clean.head_side.mrr

    def test_crash_without_retry_budget_is_a_typed_failure(self, tiny_dataset):
        from repro.core.models import make_complex
        from repro.errors import EvaluationError
        from repro.parallel.sharded_eval import ShardedEvaluator

        model = make_complex(
            tiny_dataset.num_entities,
            tiny_dataset.num_relations,
            8,
            np.random.default_rng(7),
        )
        plan = FaultPlan.of(
            FaultSpec(site="pool.task", kind="crash", match="task:0", max_hits=10)
        )
        evaluator = ShardedEvaluator(
            tiny_dataset, shards=2, workers=1, retries=0, fault_plan=plan
        )
        with pytest.raises(EvaluationError, match="shards failed"):
            evaluator.evaluate(model, "test")


class TestTornSweepChildOnResume:
    @staticmethod
    def _base_config():
        from repro.pipeline.config import (
            DatasetSection,
            ModelSection,
            RunConfig,
            TrainingSection,
        )

        return RunConfig(
            dataset=DatasetSection(
                generator="synthetic_wn18",
                params={"num_entities": 80, "num_clusters": 4, "seed": 11},
            ),
            model=ModelSection(name="complex", total_dim=8),
            training=TrainingSection(epochs=1, batch_size=256),
        )

    def test_truncated_artifacts_heal_by_rerun(self, tmp_path):
        from repro.pipeline.sweep import sweep

        grid = {"training.learning_rate": [0.05, 0.1]}
        clean_root, hurt_root = tmp_path / "clean", tmp_path / "hurt"
        clean = sweep(self._base_config(), grid, run_root=clean_root)
        first = sweep(self._base_config(), grid, run_root=hurt_root)
        assert [run.status for run in first] == ["completed", "completed"]

        # Tear child 0's checkpoint mid-file (a legacy torn write /
        # bit rot): resume must treat the cache entry as unusable.
        victim = first[0].run_dir / "checkpoint" / "weights.npz"
        raw = victim.read_bytes()
        victim.write_bytes(raw[: len(raw) // 2])

        resumed = sweep(self._base_config(), grid, run_root=hurt_root)
        # Child 0 re-ran from scratch; child 1's cache hit was honoured.
        assert [run.status for run in resumed] == ["completed", "cached"]
        for healed, reference in zip(resumed, clean):
            assert healed.metrics["test"].mrr == reference.metrics["test"].mrr
        # The healed run dir is whole again — checkpoint loads and
        # verifies, so a *second* resume is a pure cache hit.
        again = sweep(self._base_config(), grid, run_root=hurt_root)
        assert [run.status for run in again] == ["cached", "cached"]

    def test_transient_child_fault_healed_by_sweep_retry(self, tmp_path):
        from repro.pipeline.sweep import sweep

        grid = {"training.learning_rate": [0.05, 0.1]}
        plan = FaultPlan.of(
            FaultSpec(site="pool.task", kind="exception", match="task:1;attempt:0")
        )
        clean = sweep(self._base_config(), grid, run_root=tmp_path / "a")
        healed = sweep(
            self._base_config(),
            grid,
            run_root=tmp_path / "b",
            retries=1,
            fault_plan=plan,
        )
        assert [run.status for run in healed] == ["completed", "completed"]
        for chaotic, reference in zip(healed, clean):
            assert chaotic.metrics["test"].mrr == reference.metrics["test"].mrr


class TestByteFlippedIndexDegradesServing:
    def test_corrupt_index_serves_exact_answers(self, run_copy):
        import asyncio

        from repro.serving import PredictionServer

        async def answers(path, index, expect_degraded):
            server = PredictionServer(max_batch=8, max_wait_ms=1.0)
            async with server:
                deployment = await server.load_run(path, index=index)
                assert deployment.degraded is expect_degraded
                served = [
                    await server.top_k_tails(h, 0, k=5, filtered=True)
                    for h in range(6)
                ]
                assert all(s.degraded is expect_degraded for s in served)
                health = server.health_dict()
                assert health["degraded"] is expect_degraded
                return [(list(s.ids), list(s.scores)) for s in served]

        # Sanity: the intact index deploys non-degraded.
        asyncio.run(answers(run_copy, "auto", False))
        # The bit-identity reference: the same checkpoint served with
        # no index at all (exact full sweeps).
        exact = asyncio.run(answers(run_copy, None, False))

        npz = run_copy / "index" / "arrays.npz"
        raw = bytearray(npz.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        npz.write_bytes(bytes(raw))

        degraded = asyncio.run(answers(run_copy, "auto", True))
        # Degraded mode must be *exactly* index-free serving — same
        # ids, same score bits — not merely a plausible approximation.
        assert degraded == exact
