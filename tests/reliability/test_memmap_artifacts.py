"""Memory-mapped artifacts under fault: typed errors, manifests, recovery.

The memmap checkpoint layout (``checkpoint/store/*.npy``) must give the
same crash-safety contract as the packed ``weights.npz`` path: injected
write corruption or direct file surgery surfaces as a typed
:class:`~repro.errors.ArtifactError` naming the damaged file — never a
raw numpy traceback — the run manifest's sha256 chain covers every
mapped file, and a torn write recovers bit-identically on retry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import make_complex
from repro.core.serialization import CHECKPOINT_STORE_DIR, load_model, save_model
from repro.errors import (
    ArtifactError,
    CorruptArtifactError,
    InjectedFault,
    MissingArtifactError,
)
from repro.reliability.faults import FaultInjector, FaultPlan, FaultSpec, fault_scope
from repro.reliability.manifest import read_manifest, verify_manifest, write_manifest

pytestmark = pytest.mark.reliability


@pytest.fixture
def model():
    return make_complex(80, 4, 16, np.random.default_rng(13))


def _assert_scores_equal(a, b):
    rng = np.random.default_rng(0)
    heads = rng.integers(0, a.num_entities, 20)
    tails = rng.integers(0, a.num_entities, 20)
    rels = rng.integers(0, a.num_relations, 20)
    np.testing.assert_array_equal(
        np.asarray(a.score_triples(heads, tails, rels)),
        np.asarray(b.score_triples(heads, tails, rels)),
    )


class TestInjectedCorruption:
    """Write faults on ``.npy`` payloads must raise typed errors."""

    @pytest.mark.parametrize(
        "spec",
        [
            FaultSpec(site="io.write", kind="truncate", drop_bytes=64, match=".npy"),
            FaultSpec(site="io.write", kind="byteflip", seed=5, match=".npy"),
        ],
        ids=["truncate", "byteflip"],
    )
    def test_save_detects_damage_as_typed_error(self, tmp_path, model, spec):
        with fault_scope(FaultInjector(FaultPlan.of(spec))):
            with pytest.raises(ArtifactError):
                save_model(model, tmp_path / "ckpt", memmap=True)

    @pytest.mark.parametrize("surgery", ["truncate", "byteflip"])
    def test_load_detects_on_disk_damage(self, tmp_path, model, surgery):
        save_model(model, tmp_path / "ckpt", memmap=True)
        path = tmp_path / "ckpt" / CHECKPOINT_STORE_DIR / "entity_embeddings.npy"
        raw = bytearray(path.read_bytes())
        if surgery == "truncate":
            raw = raw[: len(raw) // 2]
        else:
            raw[-3] ^= 0x40
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptArtifactError) as caught:
            load_model(tmp_path / "ckpt")
        assert "entity_embeddings.npy" in str(caught.value)

    def test_missing_mapped_file_is_typed(self, tmp_path, model):
        save_model(model, tmp_path / "ckpt", memmap=True)
        (tmp_path / "ckpt" / CHECKPOINT_STORE_DIR / "relation_embeddings.npy").unlink()
        with pytest.raises(MissingArtifactError):
            load_model(tmp_path / "ckpt")


class TestManifestCoversMappedFiles:
    def test_save_hashes_enumerate_every_store_file(self, tmp_path, model):
        hashes = save_model(model, tmp_path / "ckpt", memmap=True)
        assert f"{CHECKPOINT_STORE_DIR}/entity_embeddings.npy" in hashes
        assert f"{CHECKPOINT_STORE_DIR}/store.json" in hashes
        assert "meta.json" in hashes
        write_manifest(tmp_path / "ckpt", hashes)
        assert set(verify_manifest(tmp_path / "ckpt")) == set(hashes)

    def test_manifest_catches_mapped_file_corruption(self, tmp_path, model):
        hashes = save_model(model, tmp_path / "ckpt", memmap=True)
        write_manifest(tmp_path / "ckpt", hashes)
        path = tmp_path / "ckpt" / CHECKPOINT_STORE_DIR / "entity_embeddings.npy"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptArtifactError) as caught:
            verify_manifest(tmp_path / "ckpt")
        assert caught.value.path.endswith("entity_embeddings.npy")


class TestTornWriteRecovery:
    def test_aborted_save_retries_bit_identical(self, tmp_path, model):
        """An injected abort mid-save must leave a retry fully clean."""
        plan = FaultPlan.of(
            FaultSpec(site="io.write", kind="exception", match=".npy", max_hits=1)
        )
        with fault_scope(FaultInjector(plan)):
            with pytest.raises(InjectedFault):
                save_model(model, tmp_path / "ckpt", memmap=True)
            save_model(model, tmp_path / "ckpt", memmap=True)  # retry, fault spent
        restored = load_model(tmp_path / "ckpt")
        _assert_scores_equal(model, restored)

    def test_aborted_rewrite_preserves_previous_checkpoint(self, tmp_path, model):
        save_model(model, tmp_path / "ckpt", memmap=True)
        trained = make_complex(80, 4, 16, np.random.default_rng(99))
        plan = FaultPlan.of(FaultSpec(site="io.write", kind="exception", match=".npy"))
        with fault_scope(FaultInjector(plan)):
            with pytest.raises(InjectedFault):
                save_model(trained, tmp_path / "ckpt", memmap=True)
        # Atomic replacement: the old complete artifact is still served.
        _assert_scores_equal(model, load_model(tmp_path / "ckpt"))


class TestRunDirIntegration:
    @pytest.fixture(scope="class")
    def memmap_run(self, tmp_path_factory):
        from repro.pipeline.config import (
            DatasetSection,
            IndexSection,
            ModelSection,
            RunConfig,
            StorageSection,
            TrainingSection,
        )
        from repro.pipeline.runner import run_pipeline

        config = RunConfig(
            dataset=DatasetSection(
                generator="synthetic_wn18",
                params={"num_entities": 100, "num_clusters": 5, "seed": 4},
            ),
            model=ModelSection(name="complex", total_dim=8),
            training=TrainingSection(epochs=1, batch_size=256),
            index=IndexSection(kind="ivf", nlist=6, nprobe=2),
            storage=StorageSection(memmap=True),
        )
        path = tmp_path_factory.mktemp("memmap_run") / "run"
        run_pipeline(config, run_dir=path)
        return path

    def test_manifest_lists_store_files(self, memmap_run):
        manifest = read_manifest(memmap_run)
        assert manifest is not None
        assert "checkpoint/store/entity_embeddings.npy" in manifest
        assert "checkpoint/store/store.json" in manifest

    def test_load_run_maps_tables_and_verifies(self, memmap_run):
        from repro.core.memstore import is_mapped
        from repro.pipeline.runner import load_run

        loaded = load_run(memmap_run)
        assert is_mapped(loaded.model.entity_embeddings)

    def test_load_run_rejects_corrupt_store_file(self, memmap_run, tmp_path):
        import shutil

        from repro.pipeline.runner import load_run

        copy = tmp_path / "run"
        shutil.copytree(memmap_run, copy)
        path = copy / "checkpoint" / "store" / "entity_embeddings.npy"
        raw = bytearray(path.read_bytes())
        raw[-2] ^= 0x10
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptArtifactError):
            load_run(copy)
