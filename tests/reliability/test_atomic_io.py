"""Crash-safe artifact IO: atomic writes, manifests, typed load errors.

The contract under test: a crash (or injected fault) at any point in a
write leaves either the old complete artifact or the new complete one;
any damage that *does* land on disk (simulated via data faults or
direct file surgery) surfaces at load time as a typed
:class:`~repro.errors.ArtifactError` naming the offending path — never
a raw ``JSONDecodeError``/``FileNotFoundError``/zipfile traceback.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import (
    ArtifactError,
    CorruptArtifactError,
    InjectedFault,
    MissingArtifactError,
)
from repro.reliability.atomic import atomic_write_bytes, atomic_write_json
from repro.reliability.faults import FaultInjector, FaultPlan, FaultSpec, fault_scope
from repro.reliability.manifest import (
    read_manifest,
    sha256_bytes,
    verify_artifact,
    verify_manifest,
    write_manifest,
)

pytestmark = pytest.mark.reliability


def _injector(*specs):
    return FaultInjector(FaultPlan.of(*specs))


class TestAtomicWrite:
    def test_writes_and_returns_path(self, tmp_path):
        path = atomic_write_bytes(tmp_path / "a" / "b.bin", b"payload")
        assert path.read_bytes() == b"payload"

    def test_no_temp_litter_after_success(self, tmp_path):
        atomic_write_bytes(tmp_path / "x.bin", b"data")
        assert [p.name for p in tmp_path.iterdir()] == ["x.bin"]

    def test_injected_abort_preserves_previous_content(self, tmp_path):
        target = tmp_path / "state.json"
        atomic_write_json(target, {"epoch": 1})
        before = target.read_bytes()
        with fault_scope(_injector(FaultSpec(site="io.write", kind="exception"))):
            with pytest.raises(InjectedFault):
                atomic_write_json(target, {"epoch": 2})
        # The old artifact survives intact and no temp file leaks.
        assert target.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["state.json"]

    def test_truncate_fault_corrupts_payload_on_disk(self, tmp_path):
        target = tmp_path / "data.bin"
        with fault_scope(
            _injector(FaultSpec(site="io.write", kind="truncate", drop_bytes=4))
        ):
            atomic_write_bytes(target, b"0123456789")
        assert target.read_bytes() == b"012345"


class TestManifest:
    def test_round_trip_and_verify(self, tmp_path):
        payload = b"artifact-bytes"
        atomic_write_bytes(tmp_path / "weights.npz", payload)
        write_manifest(tmp_path, {"weights.npz": sha256_bytes(payload)})
        assert verify_manifest(tmp_path) == ["weights.npz"]

    def test_no_manifest_means_nothing_to_check(self, tmp_path):
        assert read_manifest(tmp_path) is None
        assert verify_manifest(tmp_path) == []
        verify_artifact(tmp_path, "anything.json", None)  # no-op

    def test_hashes_intended_bytes_so_injected_corruption_is_caught(self, tmp_path):
        """Manifests must hash what the writer *meant* to persist;
        hashing the (corrupted) file after the fact would self-certify
        the damage."""
        payload = b"the intended artifact payload"
        with fault_scope(
            _injector(FaultSpec(site="io.write", kind="byteflip", seed=3))
        ):
            atomic_write_bytes(tmp_path / "arrays.npz", payload)
        write_manifest(tmp_path, {"arrays.npz": sha256_bytes(payload)})
        with pytest.raises(CorruptArtifactError) as caught:
            verify_manifest(tmp_path)
        assert "arrays.npz" in str(caught.value)
        assert caught.value.path.endswith("arrays.npz")

    def test_promised_but_missing_artifact(self, tmp_path):
        write_manifest(tmp_path, {"gone.json": sha256_bytes(b"x")})
        with pytest.raises(MissingArtifactError):
            verify_manifest(tmp_path)

    def test_unparseable_manifest_is_corrupt(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(CorruptArtifactError):
            read_manifest(tmp_path)


class TestCheckpointIntegrity:
    def test_save_load_round_trip_with_hashes(self, tmp_path, tiny_dataset):
        from repro.core.models import make_complex
        from repro.core.serialization import load_model, save_model

        model = make_complex(
            tiny_dataset.num_entities,
            tiny_dataset.num_relations,
            8,
            np.random.default_rng(0),
        )
        hashes = save_model(model, tmp_path / "ckpt")
        assert set(hashes) == {"weights.npz", "meta.json"}
        restored = load_model(tmp_path / "ckpt")
        np.testing.assert_array_equal(
            restored.entity_embeddings, model.entity_embeddings
        )

    def test_flipped_weights_detected(self, tmp_path, tiny_dataset):
        from repro.core.models import make_complex
        from repro.core.serialization import load_model, save_model

        model = make_complex(
            tiny_dataset.num_entities,
            tiny_dataset.num_relations,
            8,
            np.random.default_rng(0),
        )
        save_model(model, tmp_path / "ckpt")
        npz = tmp_path / "ckpt" / "weights.npz"
        raw = bytearray(npz.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        npz.write_bytes(bytes(raw))
        with pytest.raises(CorruptArtifactError) as caught:
            load_model(tmp_path / "ckpt")
        assert caught.value.path.endswith("weights.npz")

    def test_torn_meta_detected(self, tmp_path, tiny_dataset):
        from repro.core.models import make_complex
        from repro.core.serialization import load_model, save_model

        model = make_complex(
            tiny_dataset.num_entities,
            tiny_dataset.num_relations,
            8,
            np.random.default_rng(0),
        )
        save_model(model, tmp_path / "ckpt")
        meta = tmp_path / "ckpt" / "meta.json"
        meta.write_text(meta.read_text()[: len(meta.read_text()) // 2])
        with pytest.raises(CorruptArtifactError):
            load_model(tmp_path / "ckpt")


class TestLoadRunTypedErrors:
    """Satellite: ``load_run`` on damaged run dirs raises typed errors."""

    def test_run_dir_writes_a_manifest_that_verifies(self, run_dir):
        manifest = read_manifest(run_dir)
        assert manifest is not None
        assert "config.json" in manifest
        assert "checkpoint/weights.npz" in manifest
        assert "metrics.json" in manifest and "history.json" in manifest
        assert verify_manifest(run_dir) == sorted(manifest)

    def test_partial_metrics_json_is_typed(self, run_copy):
        from repro.pipeline.runner import load_run

        metrics = run_copy / "metrics.json"
        metrics.write_text(metrics.read_text()[:25])  # torn legacy write
        with pytest.raises(CorruptArtifactError) as caught:
            load_run(run_copy)
        assert caught.value.path.endswith("metrics.json")
        assert not isinstance(caught.value, json.JSONDecodeError)

    def test_missing_promised_metrics_is_typed(self, run_copy):
        from repro.pipeline.runner import load_run

        (run_copy / "metrics.json").unlink()
        with pytest.raises(MissingArtifactError) as caught:
            load_run(run_copy)
        assert caught.value.path.endswith("metrics.json")
        assert not isinstance(caught.value, FileNotFoundError)

    def test_partial_history_json_is_typed(self, run_copy):
        from repro.pipeline.runner import load_run

        history = run_copy / "history.json"
        history.write_text("{\"epochs\": [1,")
        with pytest.raises(ArtifactError):
            load_run(run_copy)

    def test_pre_manifest_run_dir_still_loads(self, run_copy):
        """Manifests are advisory: run dirs from before the integrity
        layer (no manifest.json, optional artifacts absent) keep
        loading, bit-identically."""
        from repro.pipeline.runner import load_run

        (run_copy / "manifest.json").unlink()
        (run_copy / "metrics.json").unlink()
        (run_copy / "history.json").unlink()
        loaded = load_run(run_copy)
        assert loaded.metrics == {}
        assert loaded.history == {}

    def test_corrupt_config_is_typed(self, run_copy):
        from repro.pipeline.runner import load_run

        config = run_copy / "config.json"
        config.write_text(config.read_text() + "garbage")
        with pytest.raises(CorruptArtifactError) as caught:
            load_run(run_copy)
        assert caught.value.path.endswith("config.json")


class TestIndexIntegrity:
    def test_flipped_index_arrays_detected(self, run_copy):
        from repro.index import load_index
        from repro.pipeline.runner import load_run

        # Bypass the run manifest: the index has its own arrays_sha256.
        loaded = load_run(run_copy)
        npz = run_copy / "index" / "arrays.npz"
        raw = bytearray(npz.read_bytes())
        raw[len(raw) // 3] ^= 0xFF
        npz.write_bytes(bytes(raw))
        with pytest.raises(CorruptArtifactError) as caught:
            load_index(run_copy / "index", loaded.model, on_stale="error")
        assert caught.value.path.endswith("arrays.npz")

    def test_missing_promised_index_arrays_detected(self, run_copy):
        from repro.index import load_index
        from repro.pipeline.runner import load_run

        loaded = load_run(run_copy)
        (run_copy / "index" / "arrays.npz").unlink()
        with pytest.raises(CorruptArtifactError):
            load_index(run_copy / "index", loaded.model, on_stale="error")

    def test_torn_index_meta_detected(self, run_copy):
        from repro.index import load_index
        from repro.pipeline.runner import load_run

        loaded = load_run(run_copy)
        meta = run_copy / "index" / "meta.json"
        meta.write_text(meta.read_text()[:30])
        with pytest.raises(CorruptArtifactError):
            load_index(run_copy / "index", loaded.model, on_stale="error")
