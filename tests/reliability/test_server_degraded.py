"""Degraded-mode serving: deadlines, exact fallback, health, retry hints.

Contract under test (see :mod:`repro.serving.server`):

* a request whose ``deadline_ms`` budget expires before dispatch fails
  with :class:`DeadlineExceededError` instead of occupying batch slots;
* an index that turns stale/corrupt **at serving time** degrades the
  affected group to the exact full-sweep path — answers stay correct,
  responses are tagged ``degraded`` and the sticky server flag holds
  until the next successful swap;
* the ``retry_after_ms`` overload hint is clamped: no pathological
  service-time sample can balloon (or collapse) it;
* drain shutdown and hot-swap atomicity hold with injected latency in
  the scoring thread (the ``server.dispatch`` fault site).
"""

from __future__ import annotations

import asyncio
import collections
import json

import numpy as np
import pytest

from repro.core.models import make_complex
from repro.errors import (
    DeadlineExceededError,
    ServerOverloadedError,
    ServingError,
)
from repro.index.ivf import IVFIndex
from repro.kg.synthetic import SyntheticKGConfig, generate_synthetic_kg
from repro.reliability.faults import FaultInjector, FaultPlan, FaultSpec, fault_scope
from repro.serving import LinkPredictor, PredictionServer
from repro.serving.server import (
    RETRY_AFTER_CEILING_MS,
    RETRY_AFTER_FLOOR_MS,
    SERVICE_EMA_CEILING_S,
    SERVICE_EMA_FLOOR_S,
    start_tcp_server,
)

pytestmark = pytest.mark.reliability

BUDGET = 16


@pytest.fixture(scope="module")
def dataset():
    return generate_synthetic_kg(
        SyntheticKGConfig(num_entities=150, num_clusters=8, seed=4)
    )


@pytest.fixture()
def model(dataset):
    return make_complex(
        dataset.num_entities, dataset.num_relations, BUDGET, np.random.default_rng(6)
    )


def _slow_dispatch(delay_s: float, max_hits: int = 1) -> FaultInjector:
    return FaultInjector(
        FaultPlan.of(
            FaultSpec(
                site="server.dispatch", kind="slow", delay_s=delay_s, max_hits=max_hits
            )
        )
    )


class TestRetryAfterClamp:
    """Satellite: the EMA + retry hint are clamped to floor/ceiling."""

    def test_pathological_sample_clamps_to_ceiling(self, model, dataset):
        server = PredictionServer(LinkPredictor(model, dataset))
        server._observe_service_time(3600.0)  # one stuck batch
        assert server._service_ema == SERVICE_EMA_CEILING_S

    def test_subnormal_sample_clamps_to_floor(self, model, dataset):
        server = PredictionServer(LinkPredictor(model, dataset))
        server._observe_service_time(1e-12)
        assert server._service_ema == SERVICE_EMA_FLOOR_S

    def test_ema_blends_after_first_sample(self, model, dataset):
        server = PredictionServer(LinkPredictor(model, dataset))
        server._observe_service_time(0.1)
        server._observe_service_time(0.2)
        assert server._service_ema == pytest.approx(0.8 * 0.1 + 0.2 * 0.2)

    def test_hint_ceiling(self, model, dataset):
        server = PredictionServer(LinkPredictor(model, dataset), queue_depth=4096)
        server._service_ema = SERVICE_EMA_CEILING_S
        server._pending = collections.deque(range(4096))
        assert server._retry_after_ms() == RETRY_AFTER_CEILING_MS

    def test_hint_floor(self, model, dataset):
        server = PredictionServer(LinkPredictor(model, dataset), max_wait_ms=0.0)
        server._service_ema = SERVICE_EMA_FLOOR_S
        assert server._retry_after_ms() == RETRY_AFTER_FLOOR_MS

    def test_overload_error_carries_clamped_hint(self, model, dataset):
        async def main():
            server = PredictionServer(LinkPredictor(model, dataset), queue_depth=1)
            server._service_ema = 1e9  # would be absurd without the clamp
            server._submit("tail", 0, 0, 5, False)
            with pytest.raises(ServerOverloadedError) as caught:
                server._submit("tail", 1, 0, 5, False)
            return caught.value.retry_after_ms

        hint = asyncio.run(main())
        assert RETRY_AFTER_FLOOR_MS <= hint <= RETRY_AFTER_CEILING_MS


class TestDeadlines:
    def test_expired_deadline_fails_typed(self, model, dataset):
        async def main():
            # max_wait_ms far beyond the request deadline: the batcher's
            # straggler wait alone expires the budget before dispatch.
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=64, max_wait_ms=80.0
            )
            async with server:
                with pytest.raises(DeadlineExceededError):
                    await server.top_k_tails(0, 0, k=5, deadline_ms=1.0)
                assert server.stats.deadline_expired == 1
                # The server keeps serving normally afterwards.
                served = await server.top_k_tails(0, 0, k=5)
                assert len(served.ids) == 5

        asyncio.run(main())

    def test_default_deadline_applies(self, model, dataset):
        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset),
                max_batch=64,
                max_wait_ms=80.0,
                default_deadline_ms=1.0,
            )
            async with server:
                with pytest.raises(DeadlineExceededError):
                    await server.top_k_heads(0, 0, k=5)

        asyncio.run(main())

    def test_generous_deadline_serves(self, model, dataset):
        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=1, max_wait_ms=0.0
            )
            async with server:
                served = await server.top_k_tails(0, 0, k=5, deadline_ms=30_000.0)
                assert served.degraded is False
                assert server.stats.deadline_expired == 0

        asyncio.run(main())

    def test_invalid_deadlines_rejected(self, model, dataset):
        with pytest.raises(ServingError, match="default_deadline_ms"):
            PredictionServer(LinkPredictor(model, dataset), default_deadline_ms=0)

        async def main():
            server = PredictionServer(LinkPredictor(model, dataset))
            async with server:
                with pytest.raises(ServingError, match="deadline_ms"):
                    await server.top_k_tails(0, 0, k=5, deadline_ms=-1.0)

        asyncio.run(main())


class TestServingTimeDegradation:
    def test_stale_index_falls_back_to_exact(self, model, dataset):
        """An index that goes stale *between* swap and request must not
        fail the request: the group re-scores exactly, tagged degraded."""
        index = IVFIndex(model, nlist=8, nprobe=2, on_stale="error")
        predictor = LinkPredictor(model, dataset, index=index)
        reference = LinkPredictor(model, dataset)  # index-free twin

        async def main():
            server = PredictionServer(predictor, max_batch=4, max_wait_ms=1.0)
            async with server:
                before = await server.top_k_tails(1, 0, k=5, filtered=True)
                assert before.degraded is False
                assert server.health_dict()["status"] == "ok"

                # Simulate training racing the serving path: the version
                # moves, the on_stale="error" index refuses to answer.
                model._bump_scoring_version()
                after = await server.top_k_tails(1, 0, k=5, filtered=True)
                assert after.degraded is True
                assert server.degraded
                assert server.health_dict()["status"] == "degraded"
                assert server.stats.degraded == 1

                # Degraded answers are the exact full-sweep answers.
                exact = reference.top_k_tails([1], [0], k=5, filtered=True)
                assert list(after.ids) == list(exact.ids[0])
                assert list(after.scores) == list(exact.scores[0])
                return server

        asyncio.run(main())

    def test_successful_swap_clears_degraded(self, model, dataset):
        index = IVFIndex(model, nlist=8, nprobe=2, on_stale="error")
        predictor = LinkPredictor(model, dataset, index=index)

        async def main():
            server = PredictionServer(predictor, max_batch=4, max_wait_ms=1.0)
            async with server:
                model._bump_scoring_version()
                served = await server.top_k_tails(0, 0, k=3)
                assert served.degraded and server.degraded
                # A fresh, healthy deployment resets the sticky flag.
                await server.swap_predictor(LinkPredictor(model, dataset))
                assert not server.degraded
                assert server.health_dict()["status"] == "ok"
                healthy = await server.top_k_tails(0, 0, k=3)
                assert healthy.degraded is False

        asyncio.run(main())


class TestDrainAndSwapUnderInjectedLatency:
    """Satellite: close(drain=True) and swap atomicity with slow batches."""

    def test_drain_answers_everything_despite_slow_batch(self, model, dataset):
        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=4, max_wait_ms=1.0
            )
            with fault_scope(_slow_dispatch(0.15, max_hits=2)):
                async with server:
                    pending = [
                        asyncio.ensure_future(server.top_k_tails(h, 0, k=4))
                        for h in range(8)
                    ]
                    await asyncio.sleep(0)  # let the batcher pick them up
                    await server.close(drain=True)
                results = await asyncio.gather(*pending)
            assert len(results) == 8
            assert server.stats.served == 8
            assert server.stats.failed == 0

        asyncio.run(main())

    def test_swap_waits_for_inflight_slow_batch(self, model, dataset):
        second = make_complex(
            dataset.num_entities, dataset.num_relations, BUDGET,
            np.random.default_rng(99),
        )

        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=8, max_wait_ms=0.0
            )
            with fault_scope(_slow_dispatch(0.2, max_hits=1)):
                async with server:
                    first = [
                        asyncio.ensure_future(server.top_k_tails(h, 0, k=4))
                        for h in range(4)
                    ]
                    await asyncio.sleep(0.05)  # batch now slow-scoring in-thread
                    deployment = await server.swap_predictor(
                        LinkPredictor(second, dataset)
                    )
                    assert deployment.generation == 2
                    batch_one = await asyncio.gather(*first)
                    after = await server.top_k_tails(0, 0, k=4)
            # Every pre-swap response came from generation 1 — the swap
            # could not land mid-batch even with the batch artificially
            # slowed; post-swap traffic sees generation 2.
            assert {served.generation for served in batch_one} == {1}
            assert after.generation == 2

        asyncio.run(main())


class TestWireProtocol:
    def test_health_and_degraded_round_trip(self, model, dataset, run_copy):
        async def query(reader, writer, payload):
            writer.write((json.dumps(payload) + "\n").encode())
            await writer.drain()
            return json.loads(await reader.readline())

        async def main():
            server = PredictionServer(max_batch=4, max_wait_ms=1.0)
            # Corrupt the persisted index: the TCP deployment degrades.
            npz = run_copy / "index" / "arrays.npz"
            raw = bytearray(npz.read_bytes())
            raw[0] ^= 0xFF
            npz.write_bytes(bytes(raw))
            await server.load_run(run_copy)
            tcp = await start_tcp_server(server)
            host, port = tcp.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            try:
                health = await query(reader, writer, {"op": "health", "id": 1})
                assert health["ok"] and health["health"]["status"] == "degraded"
                assert health["health"]["degraded"] is True

                top = await query(
                    reader, writer,
                    {"op": "top_k", "id": 2, "head": 0, "relation": 0, "k": 3},
                )
                assert top["ok"] and top["degraded"] is True

                stats = await query(reader, writer, {"op": "stats", "id": 3})
                assert stats["stats"]["degraded"] is True
                assert stats["stats"]["degraded_served"] >= 1
            finally:
                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()
                await server.close()

        asyncio.run(main())

    def test_deadline_error_code_on_the_wire(self, model, dataset):
        async def main():
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=64, max_wait_ms=80.0
            )
            tcp = await start_tcp_server(server)
            host, port = tcp.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            try:
                payload = {
                    "op": "top_k", "id": 7, "head": 0, "relation": 0,
                    "k": 3, "deadline_ms": 1.0,
                }
                writer.write((json.dumps(payload) + "\n").encode())
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is False
                assert response["error"]["code"] == "deadline"
            finally:
                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()
                await server.close()

        asyncio.run(main())

    def test_bad_deadline_type_rejected(self, model, dataset):
        async def main():
            server = PredictionServer(LinkPredictor(model, dataset))
            tcp = await start_tcp_server(server)
            host, port = tcp.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            try:
                payload = {
                    "op": "top_k", "id": 8, "head": 0, "relation": 0,
                    "deadline_ms": "soon",
                }
                writer.write((json.dumps(payload) + "\n").encode())
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is False
                assert response["error"]["code"] == "bad_request"
            finally:
                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()
                await server.close()

        asyncio.run(main())
