"""The deterministic fault-injection harness itself.

Chaos that cannot be replayed is noise: every behaviour here —
triggering, budgets, context matching, byte corruption — must be a
pure function of the :class:`FaultPlan`, so the chaos suites elsewhere
in this directory replay bit-identically.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigError, InjectedFault, TransientError
from repro.reliability.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    active_injector,
    fault_scope,
    filter_bytes,
    fire,
    install_fault_injector,
)

pytestmark = pytest.mark.reliability


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigError, match="kind"):
            FaultSpec(site="pool.task", kind="meteor_strike")

    def test_rejects_empty_site(self):
        with pytest.raises(ConfigError, match="site"):
            FaultSpec(site="", kind="exception")

    def test_rejects_bad_budgets(self):
        with pytest.raises(ConfigError, match="max_hits"):
            FaultSpec(site="s", kind="exception", max_hits=0)
        with pytest.raises(ConfigError, match="delay_s"):
            FaultSpec(site="s", kind="slow", delay_s=-1.0)
        with pytest.raises(ConfigError, match="drop_bytes"):
            FaultSpec(site="s", kind="truncate", drop_bytes=0)


class TestFaultPlan:
    def test_is_picklable(self):
        plan = FaultPlan.of(
            FaultSpec(site="pool.task", kind="crash", match="task:1;attempt:0"),
            FaultSpec(site="io.write", kind="truncate", drop_bytes=7),
        )
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_dict_round_trip(self):
        plan = FaultPlan.of(FaultSpec(site="io.write", kind="byteflip", seed=9))
        assert FaultPlan.from_dicts(plan.to_dicts()) == plan

    def test_at_site_filters(self):
        a = FaultSpec(site="pool.task", kind="exception")
        b = FaultSpec(site="io.write", kind="truncate")
        assert FaultPlan.of(a, b).at_site("io.write") == (b,)


class TestInjectorControlFaults:
    def test_exception_is_transient_and_budgeted(self):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec(site="pool.task", kind="exception", max_hits=2))
        )
        for _ in range(2):
            with pytest.raises(InjectedFault) as caught:
                injector.fire("pool.task", context="task:0;attempt:0")
            assert isinstance(caught.value, TransientError)
            assert caught.value.site == "pool.task"
        injector.fire("pool.task", context="task:0;attempt:0")  # budget spent
        assert [hit.kind for hit in injector.hits] == ["exception", "exception"]

    def test_match_pins_context(self):
        injector = FaultInjector(
            FaultPlan.of(
                FaultSpec(site="pool.task", kind="exception", match="attempt:0")
            )
        )
        injector.fire("pool.task", context="task:3;attempt:1")  # no match: no fault
        with pytest.raises(InjectedFault):
            injector.fire("pool.task", context="task:3;attempt:0")

    def test_wrong_site_never_fires(self):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec(site="io.write", kind="exception"))
        )
        injector.fire("pool.task", context="task:0;attempt:0")
        assert injector.hits == []

    def test_slow_sleeps_then_continues(self):
        import time

        injector = FaultInjector(
            FaultPlan.of(FaultSpec(site="server.dispatch", kind="slow", delay_s=0.01))
        )
        started = time.perf_counter()
        injector.fire("server.dispatch", context="side:tail")
        assert time.perf_counter() - started >= 0.01
        assert [hit.kind for hit in injector.hits] == ["slow"]

    def test_crash_degrades_to_exception_outside_workers(self):
        # os._exit in the test process would kill the runner; outside a
        # pool worker the crash kind must degrade to a transient raise.
        injector = FaultInjector(
            FaultPlan.of(FaultSpec(site="pool.task", kind="crash"))
        )
        with pytest.raises(InjectedFault):
            injector.fire("pool.task", context="task:0;attempt:0")


class TestInjectorDataFaults:
    def test_truncate_drops_tail_bytes(self):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec(site="io.write", kind="truncate", drop_bytes=3))
        )
        assert injector.filter_bytes("io.write", b"0123456789") == b"0123456"
        # Budget spent: second write passes through untouched.
        assert injector.filter_bytes("io.write", b"0123456789") == b"0123456789"

    def test_byteflip_is_seed_deterministic(self):
        plan = FaultPlan.of(FaultSpec(site="io.write", kind="byteflip", seed=5))
        one = FaultInjector(plan).filter_bytes("io.write", b"payload-bytes")
        two = FaultInjector(plan).filter_bytes("io.write", b"payload-bytes")
        assert one == two
        assert one != b"payload-bytes"
        assert len(one) == len(b"payload-bytes")
        assert sum(a != b for a, b in zip(one, b"payload-bytes")) == 1

    def test_fire_ignores_data_kinds(self):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec(site="io.write", kind="truncate"))
        )
        injector.fire("io.write", context="whatever")
        assert injector.hits == []


class TestActiveScope:
    def test_module_hooks_are_noops_without_injector(self):
        assert active_injector() is None
        fire("pool.task", context="task:0;attempt:0")
        assert filter_bytes("io.write", b"data") == b"data"

    def test_fault_scope_installs_and_restores(self):
        outer = FaultInjector(FaultPlan.of())
        previous = install_fault_injector(outer)
        try:
            inner = FaultInjector(
                FaultPlan.of(FaultSpec(site="io.write", kind="truncate"))
            )
            with fault_scope(inner) as scoped:
                assert active_injector() is scoped is inner
                assert filter_bytes("io.write", b"abcd") == b"abc"
            assert active_injector() is outer
        finally:
            install_fault_injector(previous)

    def test_fault_scope_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with fault_scope(FaultInjector(FaultPlan.of())):
                raise RuntimeError("boom")
        assert active_injector() is None
