"""Shared fixtures for the fault-tolerance suites: one tiny persisted run."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """A small trained run directory with a persisted IVF index.

    Module-scoped (training is the expensive part); tests that corrupt
    artifacts must copy it first — see :func:`run_copy`.
    """
    from repro.pipeline.config import (
        DatasetSection,
        IndexSection,
        ModelSection,
        RunConfig,
        TrainingSection,
    )
    from repro.pipeline.runner import run_pipeline

    config = RunConfig(
        dataset=DatasetSection(
            generator="synthetic_wn18",
            params={"num_entities": 120, "num_clusters": 6, "seed": 3},
        ),
        model=ModelSection(name="complex", total_dim=8),
        training=TrainingSection(epochs=2, batch_size=256),
        index=IndexSection(kind="ivf", nlist=8, nprobe=2),
    )
    path = tmp_path_factory.mktemp("reliability_run") / "run"
    run_pipeline(config, run_dir=path)
    return path


@pytest.fixture()
def run_copy(run_dir, tmp_path):
    """A throwaway copy of :func:`run_dir` safe to corrupt in place."""
    import shutil

    copy = tmp_path / "run"
    shutil.copytree(run_dir, copy)
    return copy
