"""Pool retry/backoff: transient failures heal, deterministic ones don't.

Every scenario uses a seeded :class:`FaultPlan` with its trigger pinned
to a ``task:<i>;attempt:<n>`` context token, so the exact same failure
fires on every test run — in-process and across real worker processes.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import ConfigError, TransientError
from repro.parallel.pool import run_tasks
from repro.reliability.faults import FaultPlan, FaultSpec, active_injector

pytestmark = pytest.mark.reliability


def _square(x: int) -> int:
    return x * x


def _value_error(x: int) -> int:
    raise ValueError(f"deterministic failure for {x}")


def _transient_once(x: int) -> int:
    raise TransientError("network blip")


class TestClassification:
    def test_transient_error_marks_retryable(self):
        outcomes = run_tasks(_transient_once, [1], workers=0)
        assert not outcomes[0].ok and outcomes[0].retryable

    def test_deterministic_error_not_retryable(self):
        outcomes = run_tasks(_value_error, [1], workers=0, retries=3)
        assert not outcomes[0].ok
        assert not outcomes[0].retryable
        assert outcomes[0].attempts == 1  # never re-ran

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigError, match="retries"):
            run_tasks(_square, [1], retries=-1)
        with pytest.raises(ConfigError, match="backoff"):
            run_tasks(_square, [1], backoff=-0.1)
        with pytest.raises(ConfigError, match="task_timeout"):
            run_tasks(_square, [1], task_timeout=0)


class TestInProcessRetry:
    def test_injected_fault_healed_by_retry(self):
        plan = FaultPlan.of(
            FaultSpec(site="pool.task", kind="exception", match="task:1;attempt:0")
        )
        outcomes = run_tasks(
            _square, [2, 3, 4], workers=0, retries=1, fault_plan=plan
        )
        assert [o.value for o in outcomes] == [4, 9, 16]
        assert [o.attempts for o in outcomes] == [1, 2, 1]
        assert all(o.ok for o in outcomes)

    def test_fault_without_retry_budget_fails(self):
        plan = FaultPlan.of(
            FaultSpec(site="pool.task", kind="exception", match="task:0;attempt:0")
        )
        outcomes = run_tasks(_square, [2], workers=0, fault_plan=plan)
        assert not outcomes[0].ok and outcomes[0].retryable
        assert "injected exception fault" in outcomes[0].error

    def test_fault_on_every_attempt_exhausts_retries(self):
        plan = FaultPlan.of(
            FaultSpec(site="pool.task", kind="exception", match="task:0", max_hits=10)
        )
        outcomes = run_tasks(_square, [2], workers=0, retries=2, fault_plan=plan)
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 3  # initial + 2 retries

    def test_injector_restored_after_run(self):
        plan = FaultPlan.of(FaultSpec(site="pool.task", kind="exception"))
        before = active_injector()
        run_tasks(_square, [1], workers=0, retries=1, fault_plan=plan)
        assert active_injector() is before

    def test_backoff_sleeps_between_rounds(self):
        plan = FaultPlan.of(
            FaultSpec(site="pool.task", kind="exception", match="attempt:0"),
        )
        started = time.perf_counter()
        outcomes = run_tasks(
            _square, [5], workers=0, retries=1, backoff=0.05, fault_plan=plan
        )
        assert outcomes[0].value == 25
        assert time.perf_counter() - started >= 0.05


class TestPoolRetry:
    def test_worker_crash_healed_by_retry(self):
        plan = FaultPlan.of(
            FaultSpec(site="pool.task", kind="crash", match="task:2;attempt:0")
        )
        outcomes = run_tasks(
            _square, [1, 2, 3, 4], workers=2, retries=1, fault_plan=plan
        )
        assert [o.value for o in outcomes] == [1, 4, 9, 16]
        assert all(o.ok for o in outcomes)
        # The crashed task (and any collateral of the broken pool) re-ran.
        assert outcomes[2].attempts == 2

    def test_worker_crash_without_retries_reports_death(self):
        plan = FaultPlan.of(
            FaultSpec(site="pool.task", kind="crash", match="task:0;attempt:0")
        )
        outcomes = run_tasks(_square, [1], workers=1, fault_plan=plan)
        assert not outcomes[0].ok and outcomes[0].retryable
        assert "died" in outcomes[0].error

    def test_timeout_tears_down_and_retries(self):
        plan = FaultPlan.of(
            FaultSpec(
                site="pool.task",
                kind="slow",
                match="task:0;attempt:0",
                delay_s=30.0,
            )
        )
        started = time.perf_counter()
        outcomes = run_tasks(
            _square,
            [6, 7],
            workers=2,
            retries=1,
            task_timeout=1.0,
            fault_plan=plan,
        )
        assert time.perf_counter() - started < 25.0  # did not wait out the sleep
        assert [o.value for o in outcomes] == [36, 49]
        assert outcomes[0].attempts == 2

    def test_pool_and_serial_results_identical_under_healed_faults(self):
        plan = FaultPlan.of(
            FaultSpec(site="pool.task", kind="exception", match="task:1;attempt:0")
        )
        serial = run_tasks(_square, [3, 5, 7], workers=0, retries=1, fault_plan=plan)
        clean = run_tasks(_square, [3, 5, 7], workers=0)
        assert [o.value for o in serial] == [o.value for o in clean]
