"""Tests for the FB15k-flavoured synthetic generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kg.patterns import inverse_leakage
from repro.kg.synthetic_fb import SyntheticFBConfig, generate_synthetic_fb15k


@pytest.fixture(scope="module")
def fb_dataset():
    return generate_synthetic_fb15k(
        SyntheticFBConfig(num_entities=400, seed=1, name="fb-test")
    )


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"num_entities": 10},
        {"num_types": 0},
        {"num_types": 500, "num_entities": 100},
        {"relation_templates": 0},
        {"fanout": 0.0},
        {"valid_fraction": 0.3, "test_fraction": 0.3},
    ])
    def test_invalid_configs_raise(self, kwargs):
        with pytest.raises(ConfigError):
            SyntheticFBConfig(**kwargs)


class TestStructure:
    def test_deterministic(self):
        config = SyntheticFBConfig(num_entities=200, seed=3)
        a = generate_synthetic_fb15k(config)
        b = generate_synthetic_fb15k(config)
        assert a.train.array.tolist() == b.train.array.tolist()

    def test_many_relations(self, fb_dataset):
        # templates x instances (+ inverse twins) -> far more than WN18's 13
        assert fb_dataset.num_relations > 40

    def test_every_entity_and_relation_in_train(self, fb_dataset):
        assert (fb_dataset.train.entity_degree() > 0).all()
        assert (fb_dataset.train.relation_frequency() > 0).all()

    def test_splits_disjoint(self, fb_dataset):
        assert not fb_dataset.train.as_set() & fb_dataset.test.as_set()

    def test_no_self_loops(self, fb_dataset):
        arr = fb_dataset.all_triples().array
        assert (arr[:, 0] != arr[:, 1]).all()

    def test_inverse_leakage_present(self, fb_dataset):
        # about half the relation instances have inverse twins, so leakage
        # sits well above zero but below the WN18-like generator's ~0.9
        leakage = inverse_leakage(fb_dataset, "test")
        assert 0.3 < leakage < 0.9

    def test_n_to_n_structure(self, fb_dataset):
        """Mean out-degree per (head, relation) must exceed 1 — the
        hub/fanout structure distinguishing this generator from the
        near-tree WordNet-like one."""
        arr = fb_dataset.train.array
        pairs, counts = np.unique(arr[:, [0, 2]], axis=0, return_counts=True)
        assert counts.mean() > 1.1
