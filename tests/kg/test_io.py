"""Unit tests for :mod:`repro.kg.io`."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.kg.io import (
    load_dataset_directory,
    load_dataset_with_sidecar,
    load_vocabularies,
    read_labeled_triples,
    save_dataset_directory,
    write_labeled_triples,
)


class TestTripleFiles:
    def test_round_trip(self, tmp_path):
        triples = [("a", "b", "r1"), ("b", "c", "r2")]
        path = tmp_path / "triples.txt"
        write_labeled_triples(path, triples)
        assert read_labeled_triples(path) == triples

    def test_file_format_is_head_relation_tail(self, tmp_path):
        path = tmp_path / "t.txt"
        write_labeled_triples(path, [("h", "t", "r")])
        assert path.read_text().strip() == "h\tr\tt"

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("a\tr\tb\n\n\nc\tr\td\n")
        assert len(read_labeled_triples(path)) == 2

    def test_space_separated_accepted(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("a r b\n")
        assert read_labeled_triples(path) == [("a", "b", "r")]

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("a\tr\tb\nbroken line here extra\n")
        with pytest.raises(DatasetError, match=":2:"):
            read_labeled_triples(path)


class TestDatasetDirectories:
    def test_save_load_round_trip(self, tmp_path, toy_dataset):
        save_dataset_directory(toy_dataset, tmp_path / "toy")
        loaded = load_dataset_directory(tmp_path / "toy")
        assert loaded.num_entities == toy_dataset.num_entities
        assert loaded.num_relations == toy_dataset.num_relations
        assert len(loaded.train) == len(toy_dataset.train)

    def test_sidecar_preserves_exact_ids(self, tmp_path, toy_dataset):
        save_dataset_directory(toy_dataset, tmp_path / "toy")
        loaded = load_dataset_with_sidecar(tmp_path / "toy")
        assert loaded.entities.to_list() == toy_dataset.entities.to_list()
        assert loaded.train.array.tolist() == toy_dataset.train.array.tolist()
        assert loaded.name == "toy"

    def test_load_vocabularies(self, tmp_path, toy_dataset):
        save_dataset_directory(toy_dataset, tmp_path / "toy")
        entities, relations = load_vocabularies(tmp_path / "toy")
        assert entities == toy_dataset.entities
        assert relations == toy_dataset.relations

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(DatasetError, match="not a dataset directory"):
            load_dataset_directory(tmp_path / "missing")

    def test_missing_split_raises(self, tmp_path):
        directory = tmp_path / "incomplete"
        directory.mkdir()
        (directory / "train.txt").write_text("a\tr\tb\n")
        with pytest.raises(DatasetError, match="missing split"):
            load_dataset_directory(directory)

    def test_missing_sidecar_raises(self, tmp_path):
        (tmp_path / "d").mkdir()
        with pytest.raises(DatasetError, match="sidecar"):
            load_vocabularies(tmp_path / "d")
