"""Unit tests for :mod:`repro.kg.triples`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TripleError
from repro.kg.triples import TripleSet


@pytest.fixture
def triples() -> TripleSet:
    return TripleSet([[0, 1, 0], [1, 2, 0], [2, 0, 1]], num_entities=3, num_relations=2)


class TestConstruction:
    def test_infers_id_spaces(self):
        ts = TripleSet([[0, 4, 2]])
        assert ts.num_entities == 5
        assert ts.num_relations == 3

    def test_explicit_spaces_kept(self, triples):
        assert triples.num_entities == 3
        assert triples.num_relations == 2

    def test_empty_shapes(self):
        ts = TripleSet.empty(10, 2)
        assert len(ts) == 0
        assert ts.array.shape == (0, 3)

    def test_empty_list_ok(self):
        assert len(TripleSet([], num_entities=3, num_relations=1)) == 0

    def test_wrong_shape_raises(self):
        with pytest.raises(TripleError, match="shape"):
            TripleSet([[0, 1], [1, 2]])

    def test_negative_ids_raise(self):
        with pytest.raises(TripleError, match="non-negative"):
            TripleSet([[0, -1, 0]])

    def test_entity_out_of_range_raises(self):
        with pytest.raises(TripleError, match="entity id"):
            TripleSet([[0, 9, 0]], num_entities=3, num_relations=1)

    def test_relation_out_of_range_raises(self):
        with pytest.raises(TripleError, match="relation id"):
            TripleSet([[0, 1, 9]], num_entities=3, num_relations=1)

    def test_array_is_read_only(self, triples):
        with pytest.raises(ValueError):
            triples.array[0, 0] = 99


class TestViews:
    def test_column_views(self, triples):
        assert triples.heads.tolist() == [0, 1, 2]
        assert triples.tails.tolist() == [1, 2, 0]
        assert triples.relations.tolist() == [0, 0, 1]

    def test_iteration_yields_python_ints(self, triples):
        first = next(iter(triples))
        assert first == (0, 1, 0)
        assert all(isinstance(x, int) for x in first)

    def test_contains(self, triples):
        assert (0, 1, 0) in triples
        assert (9, 9, 9) not in triples
        assert "not a triple" not in triples

    def test_equality(self, triples):
        clone = TripleSet(triples.array, 3, 2)
        assert clone == triples
        assert triples != TripleSet([[0, 1, 0]], 3, 2)


class TestTransforms:
    def test_concat(self, triples):
        other = TripleSet([[0, 2, 1]], 3, 2)
        combined = triples.concat(other)
        assert len(combined) == 4
        assert (0, 2, 1) in combined

    def test_concat_mismatched_spaces_raises(self, triples):
        with pytest.raises(TripleError, match="id spaces"):
            triples.concat(TripleSet([[0, 1, 0]], 99, 2))

    def test_deduplicate_keeps_first_occurrence_order(self):
        ts = TripleSet([[1, 2, 0], [0, 1, 0], [1, 2, 0]])
        assert ts.deduplicate().array.tolist() == [[1, 2, 0], [0, 1, 0]]

    def test_shuffled_is_permutation(self, triples):
        shuffled = triples.shuffled(np.random.default_rng(0))
        assert sorted(map(tuple, shuffled.array.tolist())) == sorted(
            map(tuple, triples.array.tolist())
        )

    def test_subset_by_mask_and_indices(self, triples):
        assert len(triples.subset(np.array([True, False, True]))) == 2
        assert triples.subset(np.array([2])).array.tolist() == [[2, 0, 1]]

    def test_relation_filter(self, triples):
        only_r1 = triples.with_relations_filtered([1])
        assert only_r1.array.tolist() == [[2, 0, 1]]

    def test_inverted_swaps_and_offsets(self, triples):
        inv = triples.inverted(relation_offset=2)
        assert inv.num_relations == 4
        assert inv.array.tolist()[0] == [1, 0, 2]


class TestIndexes:
    def test_entity_degree(self, triples):
        assert triples.entity_degree().tolist() == [2, 2, 2]

    def test_relation_frequency(self, triples):
        assert triples.relation_frequency().tolist() == [2, 1]

    def test_as_set_cached(self, triples):
        assert triples.as_set() is triples.as_set()


@given(
    st.lists(
        st.tuples(
            st.integers(0, 20), st.integers(0, 20), st.integers(0, 5)
        ),
        min_size=1,
        max_size=50,
    )
)
def test_property_dedup_idempotent_and_preserves_membership(rows):
    ts = TripleSet(rows)
    deduped = ts.deduplicate()
    assert set(deduped.as_set()) == set(ts.as_set())
    assert len(deduped.deduplicate()) == len(deduped)
    assert len(deduped) == len(set(map(tuple, rows)))


@given(st.integers(1, 10))
def test_property_double_inversion_is_identity_on_entities(offset):
    ts = TripleSet([[0, 1, 0], [2, 3, 1]])
    double = ts.inverted(offset).inverted(offset)
    assert double.heads.tolist() == ts.heads.tolist()
    assert double.tails.tolist() == ts.tails.tolist()
    assert (double.relations - 2 * offset).tolist() == ts.relations.tolist()
