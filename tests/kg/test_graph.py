"""Unit tests for :mod:`repro.kg.graph` (datasets and the filter index)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.kg.graph import FilterIndex, KGDataset, split_triples
from repro.kg.triples import TripleSet
from repro.kg.vocab import Vocabulary


def _dataset(train, valid=(), test=(), ne=5, nr=2) -> KGDataset:
    return KGDataset(
        entities=Vocabulary(f"e{i}" for i in range(ne)),
        relations=Vocabulary(f"r{i}" for i in range(nr)),
        train=TripleSet(list(train), ne, nr),
        valid=TripleSet(list(valid), ne, nr),
        test=TripleSet(list(test), ne, nr),
    )


class TestKGDataset:
    def test_basic_properties(self):
        ds = _dataset([[0, 1, 0]], [[1, 2, 0]], [[2, 3, 1]])
        assert ds.num_entities == 5
        assert ds.num_relations == 2
        assert set(ds.splits) == {"train", "valid", "test"}

    def test_all_triples_union_dedup(self):
        ds = _dataset([[0, 1, 0], [0, 1, 0]], [[1, 2, 0]], [[2, 3, 1]])
        assert len(ds.all_triples()) == 3

    def test_empty_train_raises(self):
        with pytest.raises(DatasetError, match="non-empty"):
            _dataset([])

    def test_train_test_overlap_raises(self):
        with pytest.raises(DatasetError, match="disjoint"):
            _dataset([[0, 1, 0]], test=[[0, 1, 0]])

    def test_out_of_vocab_ids_raise(self):
        with pytest.raises(DatasetError, match="outside"):
            KGDataset(
                entities=Vocabulary(["e0"]),
                relations=Vocabulary(["r0"]),
                train=TripleSet([[0, 5, 0]]),
                valid=TripleSet.empty(6, 1),
                test=TripleSet.empty(6, 1),
            )

    def test_from_labeled_triples_builds_vocab_in_order(self, toy_dataset):
        assert toy_dataset.entities.index("alice") == 0
        assert toy_dataset.entities.index("bob") == 1
        assert toy_dataset.relations.index("likes") == 0

    def test_from_labeled_triples_split_sizes(self, toy_dataset):
        assert len(toy_dataset.train) == 10
        assert len(toy_dataset.valid) == 1
        assert len(toy_dataset.test) == 1

    def test_repr_contains_counts(self, toy_dataset):
        assert "train=10" in repr(toy_dataset)


class TestFilterIndex:
    def test_true_tails_and_heads(self):
        index = FilterIndex(TripleSet([[0, 1, 0], [0, 2, 0], [3, 1, 0]]))
        assert index.true_tails(0, 0).tolist() == [1, 2]
        assert index.true_heads(1, 0).tolist() == [0, 3]

    def test_missing_key_gives_empty(self):
        index = FilterIndex(TripleSet([[0, 1, 0]]))
        assert len(index.true_tails(9, 9)) == 0
        assert len(index.true_heads(9, 9)) == 0

    def test_contains(self):
        index = FilterIndex(TripleSet([[0, 1, 0]]))
        assert index.contains(0, 1, 0)
        assert not index.contains(1, 0, 0)

    def test_results_sorted_unique(self):
        index = FilterIndex(TripleSet([[0, 5, 0], [0, 2, 0], [0, 5, 0]]))
        assert index.true_tails(0, 0).tolist() == [2, 5]

    def test_dataset_filter_index_covers_all_splits(self):
        ds = _dataset([[0, 1, 0]], [[1, 2, 0]], [[2, 3, 1]])
        assert ds.filter_index.contains(1, 2, 0)
        assert ds.filter_index.contains(2, 3, 1)

    def test_filter_index_cached(self):
        ds = _dataset([[0, 1, 0]])
        assert ds.filter_index is ds.filter_index


class TestSplitTriples:
    def test_sizes_and_disjointness(self):
        triples = TripleSet(np.column_stack([
            np.arange(100) % 10, (np.arange(100) + 1) % 10, np.zeros(100, dtype=int)
        ]))
        rng = np.random.default_rng(0)
        train, valid, test = split_triples(triples, 0.1, 0.2, rng)
        assert len(valid) == 10
        assert len(test) == 20
        assert len(train) == 70

    def test_bad_fractions_raise(self):
        triples = TripleSet([[0, 1, 0]])
        rng = np.random.default_rng(0)
        with pytest.raises(DatasetError):
            split_triples(triples, 0.6, 0.5, rng)
        with pytest.raises(DatasetError):
            split_triples(triples, -0.1, 0.1, rng)

    def test_deterministic_given_seed(self):
        triples = TripleSet([[i % 5, (i + 1) % 5, 0] for i in range(50)])
        a = split_triples(triples, 0.1, 0.1, np.random.default_rng(3))
        b = split_triples(triples, 0.1, 0.1, np.random.default_rng(3))
        assert all(x == y for x, y in zip(a, b))
