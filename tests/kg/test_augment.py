"""Unit tests for the CPh inverse augmentation (:mod:`repro.kg.augment`)."""

from __future__ import annotations

import pytest

from repro.kg.augment import (
    augment_with_inverses,
    augmented_relation_name,
    is_augmented_relation_name,
)


@pytest.fixture
def augmented(toy_dataset):
    return augment_with_inverses(toy_dataset)


class TestAugmentation:
    def test_relation_vocab_doubles(self, toy_dataset, augmented):
        assert augmented.num_relations == 2 * toy_dataset.num_relations

    def test_train_doubles(self, toy_dataset, augmented):
        assert len(augmented.train) == 2 * len(toy_dataset.train)

    def test_eval_splits_unchanged(self, toy_dataset, augmented):
        assert augmented.valid.array.tolist() == toy_dataset.valid.array.tolist()
        assert augmented.test.array.tolist() == toy_dataset.test.array.tolist()

    def test_inverse_triples_present(self, toy_dataset, augmented):
        offset = toy_dataset.num_relations
        for h, t, r in toy_dataset.train:
            assert (t, h, r + offset) in augmented.train

    def test_original_triples_preserved(self, toy_dataset, augmented):
        for triple in toy_dataset.train:
            assert triple in augmented.train

    def test_augmented_names(self, toy_dataset, augmented):
        original = toy_dataset.relations.name(0)
        assert augmented.relations.name(toy_dataset.num_relations) == augmented_relation_name(
            original
        )

    def test_entity_vocab_shared(self, toy_dataset, augmented):
        assert augmented.entities is toy_dataset.entities

    def test_dataset_name_tagged(self, augmented):
        assert augmented.name.endswith("+inv")

    def test_double_augmentation_quadruples_relations(self, toy_dataset):
        twice = augment_with_inverses(augment_with_inverses(toy_dataset))
        assert twice.num_relations == 4 * toy_dataset.num_relations


class TestNames:
    def test_name_round_trip(self):
        assert is_augmented_relation_name(augmented_relation_name("hypernym"))

    def test_plain_name_not_flagged(self):
        assert not is_augmented_relation_name("hypernym")
