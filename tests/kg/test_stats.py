"""Unit tests for :mod:`repro.kg.stats`."""

from __future__ import annotations

from repro.kg.stats import compute_stats


class TestComputeStats:
    def test_counts(self, toy_dataset):
        stats = compute_stats(toy_dataset)
        assert stats.num_entities == 6
        assert stats.num_relations == 2
        assert stats.num_train == 10
        assert stats.num_valid == 1
        assert stats.num_test == 1

    def test_degree_statistics(self, toy_dataset):
        stats = compute_stats(toy_dataset)
        # 10 train triples => total degree 20 over 6 entities
        assert abs(stats.mean_entity_degree - 20 / 6) < 1e-12
        assert stats.max_entity_degree >= stats.median_entity_degree

    def test_relation_frequencies_sum_to_train(self, toy_dataset):
        stats = compute_stats(toy_dataset)
        assert sum(stats.relation_frequencies) == stats.num_train

    def test_isolated_entities_zero_for_toy(self, toy_dataset):
        assert compute_stats(toy_dataset).isolated_entities == 0

    def test_format_table_mentions_name_and_counts(self, toy_dataset):
        table = compute_stats(toy_dataset).format_table()
        assert "toy" in table
        assert "train triples" in table
        assert "10" in table

    def test_synthetic_dataset_stats(self, tiny_dataset):
        stats = compute_stats(tiny_dataset)
        assert stats.num_entities == 100
        assert stats.isolated_entities == 0
        assert stats.mean_entity_degree > 1.0
