"""Unit tests for :mod:`repro.kg.patterns`."""

from __future__ import annotations

from repro.kg.graph import KGDataset
from repro.kg.patterns import (
    analyze_relations,
    find_inverse_partner,
    inverse_leakage,
    relation_symmetry,
)
from repro.kg.triples import TripleSet
from repro.kg.vocab import Vocabulary


def _ts(rows, ne=6, nr=3) -> TripleSet:
    return TripleSet(rows, ne, nr)


class TestSymmetry:
    def test_fully_symmetric(self):
        ts = _ts([[0, 1, 0], [1, 0, 0], [2, 3, 0], [3, 2, 0]])
        assert relation_symmetry(ts, 0) == 1.0

    def test_fully_antisymmetric(self):
        ts = _ts([[0, 1, 0], [1, 2, 0], [2, 3, 0]])
        assert relation_symmetry(ts, 0) == 0.0

    def test_half_symmetric(self):
        ts = _ts([[0, 1, 0], [1, 0, 0], [2, 3, 0], [3, 4, 0]])
        assert relation_symmetry(ts, 0) == 0.5

    def test_empty_relation(self):
        assert relation_symmetry(_ts([[0, 1, 0]]), 2) == 0.0


class TestInversePartner:
    def test_perfect_inverse_pair(self):
        ts = _ts([[0, 1, 0], [1, 0, 1], [2, 3, 0], [3, 2, 1]])
        partner, score = find_inverse_partner(ts, 0)
        assert partner == 1
        assert score == 1.0

    def test_no_partner(self):
        ts = _ts([[0, 1, 0], [2, 3, 1]])
        partner, score = find_inverse_partner(ts, 0)
        assert partner is None
        assert score == 0.0

    def test_self_symmetry_excluded(self):
        # relation 0 is symmetric; it must not be its own inverse partner
        ts = _ts([[0, 1, 0], [1, 0, 0]])
        partner, _score = find_inverse_partner(ts, 0)
        assert partner != 0

    def test_empty_relation(self):
        partner, score = find_inverse_partner(_ts([[0, 1, 0]]), 1)
        assert partner is None and score == 0.0


class TestAnalyzeRelations:
    def test_reports_for_all_relations(self):
        ts = _ts([[0, 1, 0], [1, 0, 1], [2, 3, 2], [3, 2, 2]])
        reports = analyze_relations(ts)
        assert len(reports) == 3
        assert reports[2].symmetry == 1.0
        assert reports[0].inverse_partner == 1

    def test_counts(self):
        ts = _ts([[0, 1, 0], [1, 2, 0], [2, 3, 1]])
        reports = analyze_relations(ts)
        assert reports[0].count == 2
        assert reports[1].count == 1


class TestInverseLeakage:
    def _dataset(self, train, test):
        ne, nr = 6, 2
        return KGDataset(
            entities=Vocabulary(f"e{i}" for i in range(ne)),
            relations=Vocabulary(f"r{i}" for i in range(nr)),
            train=TripleSet(train, ne, nr),
            valid=TripleSet.empty(ne, nr),
            test=TripleSet(test, ne, nr),
        )

    def test_full_leakage(self):
        ds = self._dataset(train=[[1, 0, 1], [3, 2, 1]], test=[[0, 1, 0], [2, 3, 0]])
        assert inverse_leakage(ds, "test") == 1.0

    def test_no_leakage(self):
        ds = self._dataset(train=[[0, 1, 0]], test=[[2, 3, 0]])
        assert inverse_leakage(ds, "test") == 0.0

    def test_empty_split(self):
        ds = self._dataset(train=[[0, 1, 0]], test=[[2, 3, 0]])
        assert inverse_leakage(ds, "valid") == 0.0
