"""Unit tests for :mod:`repro.kg.vocab`."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import VocabularyError
from repro.kg.vocab import Vocabulary


class TestBasics:
    def test_ids_follow_insertion_order(self):
        vocab = Vocabulary(["a", "b", "c"])
        assert [vocab.index(n) for n in "abc"] == [0, 1, 2]

    def test_name_round_trip(self):
        vocab = Vocabulary(["x", "y"])
        assert vocab.name(vocab.index("y")) == "y"

    def test_len_and_contains(self):
        vocab = Vocabulary(["a"])
        assert len(vocab) == 1
        assert "a" in vocab
        assert "b" not in vocab

    def test_iteration_yields_names_in_id_order(self):
        names = ["n2", "n0", "n1"]
        assert list(Vocabulary(names)) == names

    def test_add_returns_new_id(self):
        vocab = Vocabulary()
        assert vocab.add("first") == 0
        assert vocab.add("second") == 1

    def test_get_or_add_is_idempotent(self):
        vocab = Vocabulary()
        first = vocab.get_or_add("x")
        second = vocab.get_or_add("x")
        assert first == second
        assert len(vocab) == 1

    def test_all_names_snapshot(self):
        vocab = Vocabulary(["a", "b"])
        assert vocab.all_names == ("a", "b")

    def test_indices_and_names_vectorised(self):
        vocab = Vocabulary(["a", "b", "c"])
        assert vocab.indices(["c", "a"]) == [2, 0]
        assert vocab.names([1, 2]) == ["b", "c"]


class TestErrors:
    def test_duplicate_add_raises(self):
        vocab = Vocabulary(["a"])
        with pytest.raises(VocabularyError, match="duplicate"):
            vocab.add("a")

    def test_unknown_name_raises(self):
        with pytest.raises(VocabularyError, match="unknown"):
            Vocabulary(["a"]).index("zzz")

    def test_out_of_range_id_raises(self):
        with pytest.raises(VocabularyError, match="out of range"):
            Vocabulary(["a"]).name(5)

    def test_negative_id_raises(self):
        with pytest.raises(VocabularyError, match="out of range"):
            Vocabulary(["a"]).name(-1)

    def test_non_string_name_raises(self):
        with pytest.raises(VocabularyError, match="must be str"):
            Vocabulary().add(42)  # type: ignore[arg-type]

    def test_duplicate_in_constructor_raises(self):
        with pytest.raises(VocabularyError):
            Vocabulary(["a", "a"])


class TestSerialisation:
    def test_to_from_list_round_trip(self):
        vocab = Vocabulary(["z", "y", "x"])
        assert Vocabulary.from_list(vocab.to_list()) == vocab

    def test_equality_respects_order(self):
        assert Vocabulary(["a", "b"]) != Vocabulary(["b", "a"])

    def test_equality_other_type(self):
        assert Vocabulary(["a"]).__eq__(42) is NotImplemented

    def test_repr_mentions_size(self):
        assert "size=2" in repr(Vocabulary(["a", "b"]))


@given(st.lists(st.text(min_size=1, max_size=8), unique=True, max_size=40))
def test_property_round_trip_any_unique_names(names):
    vocab = Vocabulary(names)
    for i, name in enumerate(names):
        assert vocab.index(name) == i
        assert vocab.name(i) == name
    assert vocab.to_list() == names
