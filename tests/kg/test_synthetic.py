"""Tests for the synthetic WN18-like generator.

These certify the *scientific* properties the experiments depend on:
determinism, split hygiene, coverage, and — crucially — WN18-style
structure (inverse pairs, symmetric relations, inverse leakage into the
eval splits).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kg.patterns import find_inverse_partner, inverse_leakage, relation_symmetry
from repro.kg.synthetic import (
    SyntheticKGConfig,
    generate_synthetic_kg,
    inverse_relation_pairs,
    symmetric_relation_names,
)


class TestConfigValidation:
    def test_too_few_entities_raises(self):
        with pytest.raises(ConfigError):
            SyntheticKGConfig(num_entities=5)

    def test_bad_cluster_count_raises(self):
        with pytest.raises(ConfigError):
            SyntheticKGConfig(num_entities=100, num_clusters=0)
        with pytest.raises(ConfigError):
            SyntheticKGConfig(num_entities=100, num_clusters=200)

    def test_bad_eval_fractions_raise(self):
        with pytest.raises(ConfigError):
            SyntheticKGConfig(valid_fraction=0.3, test_fraction=0.3)
        with pytest.raises(ConfigError):
            SyntheticKGConfig(valid_fraction=-0.1)

    def test_bad_domains_raise(self):
        with pytest.raises(ConfigError):
            SyntheticKGConfig(num_entities=100, num_domains=0)


class TestGeneration:
    def test_deterministic_given_seed(self):
        config = SyntheticKGConfig(num_entities=120, num_clusters=10, num_domains=4, seed=5)
        a = generate_synthetic_kg(config)
        b = generate_synthetic_kg(config)
        assert a.train.array.tolist() == b.train.array.tolist()
        assert a.test.array.tolist() == b.test.array.tolist()

    def test_different_seeds_differ(self):
        base = dict(num_entities=120, num_clusters=10, num_domains=4)
        a = generate_synthetic_kg(SyntheticKGConfig(seed=1, **base))
        b = generate_synthetic_kg(SyntheticKGConfig(seed=2, **base))
        assert a.train.array.tolist() != b.train.array.tolist()

    def test_splits_disjoint(self, tiny_dataset):
        train = tiny_dataset.train.as_set()
        assert not train & tiny_dataset.valid.as_set()
        assert not train & tiny_dataset.test.as_set()

    def test_no_self_loops(self, tiny_dataset):
        arr = tiny_dataset.all_triples().array
        assert (arr[:, 0] != arr[:, 1]).all()

    def test_no_duplicate_triples(self, tiny_dataset):
        arr = tiny_dataset.all_triples().array
        assert len(np.unique(arr, axis=0)) == len(arr)

    def test_every_entity_in_train(self, tiny_dataset):
        degree = tiny_dataset.train.entity_degree()
        assert (degree > 0).all()

    def test_every_relation_in_train(self, tiny_dataset):
        freq = tiny_dataset.train.relation_frequency()
        assert (freq > 0).all()

    def test_eval_split_sizes_roughly_requested(self):
        config = SyntheticKGConfig(
            num_entities=400, num_clusters=20, num_domains=5,
            valid_fraction=0.05, test_fraction=0.05, seed=0,
        )
        ds = generate_synthetic_kg(config)
        total = len(ds.all_triples())
        # Coverage fix-up moves some eval triples to train, so sizes are
        # close to but at most the requested fraction.
        assert 0.02 * total < len(ds.valid) <= 0.055 * total
        assert 0.02 * total < len(ds.test) <= 0.055 * total


class TestScaleKnob:
    def test_scale_one_is_the_identity(self):
        config = SyntheticKGConfig(num_entities=120, num_clusters=8, num_domains=3)
        assert config.apply_scale() is config

    def test_scale_multiplies_counts(self):
        config = SyntheticKGConfig(
            num_entities=120, num_clusters=8, num_domains=3, scale=2.5
        )
        scaled = config.apply_scale()
        assert scaled.num_entities == 300
        assert scaled.num_clusters == 20
        assert scaled.num_domains == 8
        assert scaled.scale == 1.0

    def test_scaled_generation_is_deterministic(self):
        config = SyntheticKGConfig(
            num_entities=100, num_clusters=8, num_domains=3, seed=9, scale=3.0
        )
        first = generate_synthetic_kg(config)
        second = generate_synthetic_kg(config)
        assert first.num_entities == 300
        np.testing.assert_array_equal(first.train.array, second.train.array)
        np.testing.assert_array_equal(first.test.array, second.test.array)

    def test_scaled_config_equivalent_to_explicit_counts(self):
        scaled = generate_synthetic_kg(
            SyntheticKGConfig(
                num_entities=100, num_clusters=8, num_domains=3, seed=9, scale=2.0
            )
        )
        explicit = generate_synthetic_kg(
            SyntheticKGConfig(num_entities=200, num_clusters=16, num_domains=6, seed=9)
        )
        np.testing.assert_array_equal(scaled.train.array, explicit.train.array)

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ConfigError):
            SyntheticKGConfig(scale=0.0)


class TestWN18Structure:
    """The properties that make the paper's findings reproducible."""

    def test_inverse_leakage_matches_wn18(self, small_dataset):
        # WN18's test-inverse-in-train rate is ~0.94.
        leakage = inverse_leakage(small_dataset, "test")
        assert leakage > 0.85

    def test_symmetric_relations_are_symmetric(self, small_dataset):
        all_triples = small_dataset.all_triples()
        for name in symmetric_relation_names():
            rel = small_dataset.relations.index(name)
            assert relation_symmetry(all_triples, rel) == 1.0

    def test_inverse_pairs_detected(self, small_dataset):
        all_triples = small_dataset.all_triples()
        for fwd_name, inv_name in inverse_relation_pairs():
            fwd = small_dataset.relations.index(fwd_name)
            inv = small_dataset.relations.index(inv_name)
            partner, score = find_inverse_partner(all_triples, fwd)
            assert partner == inv
            assert score == 1.0

    def test_hierarchy_relation_is_antisymmetric(self, small_dataset):
        all_triples = small_dataset.all_triples()
        hypernym = small_dataset.relations.index("hypernym")
        assert relation_symmetry(all_triples, hypernym) < 0.05

    def test_relation_frequency_is_skewed(self, small_dataset):
        freq = small_dataset.train.relation_frequency()
        assert freq.max() > 3 * max(1, freq.min())
