"""Tier-1 smoke run of the incremental-ingestion benchmark.

Runs ``benchmarks/bench_ingest.py`` in fast mode (1k-entity graph,
three ingest batches): the JSON payload must have the documented
schema, and the acceptance shape must hold — after streaming the delta
batches through :func:`repro.ingest.ingest_delta`, filtered MRR and
index recall@10 stay within tolerance of a from-scratch retrain+rebuild
at a fraction of its wall-clock cost.  The headline ≤ 25% cost-ratio
claim at full scale is evidenced by the committed ``BENCH_ingest.json``.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.ingest

BENCH_PATH = Path(__file__).parent.parent / "benchmarks" / "bench_ingest.py"


@pytest.fixture(scope="module")
def bench_module():
    spec = importlib.util.spec_from_file_location("bench_ingest", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def smoke_results(bench_module, tmp_path_factory):
    json_path = tmp_path_factory.mktemp("bench") / "BENCH_ingest.json"
    results = bench_module.run_benchmark(fast=True, json_path=json_path)
    return results, json_path


def test_json_written_with_schema(smoke_results):
    results, json_path = smoke_results
    on_disk = json.loads(json_path.read_text(encoding="utf-8"))
    assert on_disk["config"]["fast"] is True
    assert (
        on_disk["dataset"]["num_entities_final"]
        == results["dataset"]["num_entities_final"]
    )
    assert on_disk["dataset"]["new_entities"] > 0
    assert on_disk["dataset"]["stream_triples"] > 0
    assert (
        on_disk["dataset"]["num_entities_final"]
        == on_disk["dataset"]["num_entities_base"] + on_disk["dataset"]["new_entities"]
    )
    for arm in ("incremental", "scratch"):
        stats = on_disk[arm]
        for key in ("seconds", "filtered_mrr", "recall_at_10"):
            assert key in stats, f"{arm} missing {key}"
        assert stats["seconds"] > 0
        assert 0.0 <= stats["recall_at_10"] <= 1.0
    assert len(on_disk["incremental"]["batches"]) == on_disk["config"]["batches"]
    for key in ("cost_ratio", "mrr_delta", "recall_delta", "achieved"):
        assert key in on_disk["acceptance"]


def test_every_batch_applied_and_versioned(smoke_results):
    """Each ingest batch must report applied=True, and the graph version
    must have advanced once per batch."""
    results, _ = smoke_results
    receipts = results["incremental"]["batches"]
    assert all(receipt["applied"] for receipt in receipts)
    assert results["incremental"]["graph_version"] == results["config"]["batches"]


def test_index_maintained_online_with_drift_reports(smoke_results):
    """Every batch must carry an index-maintenance report: either an
    in-place splice (drift under threshold) or an explicit
    drift-triggered rebuild — never a silent full rebuild per batch."""
    results, _ = smoke_results
    receipts = results["incremental"]["batches"]
    rebuilds_reported = 0
    for receipt in receipts:
        report = receipt["index"]
        for key in ("drift", "rebuild_triggered", "entities_updated", "new_entities"):
            assert key in report, f"index report missing {key}"
        assert report["drift"] >= 0.0
        rebuilds_reported += bool(report["rebuild_triggered"])
    assert results["incremental"]["index_rebuilds"] == rebuilds_reported
    # Maintenance must be incremental overall, not a rebuild per batch.
    assert rebuilds_reported < len(receipts)


def test_acceptance_quality_within_tolerance_at_lower_cost(smoke_results, bench_module):
    results, _ = smoke_results
    acceptance = results["acceptance"]
    assert acceptance["achieved"], acceptance
    assert acceptance["cost_ratio"] <= bench_module.COST_RATIO_TARGET
    assert acceptance["mrr_delta"] >= -bench_module.MRR_TOLERANCE
    assert acceptance["recall_delta"] >= -bench_module.RECALL_TOLERANCE


def test_committed_artifact_is_a_passing_full_run():
    """The repo-root BENCH_ingest.json must be a real full-scale run
    that met the ≤25% cost target — the committed evidence."""
    artifact = Path(__file__).parent.parent / "BENCH_ingest.json"
    payload = json.loads(artifact.read_text(encoding="utf-8"))
    assert payload["config"]["fast"] is False
    assert payload["acceptance"]["achieved"] is True
    assert payload["acceptance"]["cost_ratio"] <= 0.25
    assert payload["acceptance"]["mrr_delta"] >= -0.05
    assert payload["acceptance"]["recall_delta"] >= -0.05
